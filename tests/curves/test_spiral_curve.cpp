#include "sfc/curves/spiral_curve.h"

#include <gtest/gtest.h>

#include <vector>

#include "sfc/curves/curve_error.h"

namespace sfc {
namespace {

TEST(SpiralCurve, ThreeByThreeByHand) {
  // Outer ring counter-clockwise from (0,0), then the center.
  const Universe u(2, 3);
  const SpiralCurve s(u);
  const std::vector<Point> expected = {{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2},
                                       {1, 2}, {0, 2}, {0, 1}, {1, 1}};
  for (std::size_t key = 0; key < expected.size(); ++key) {
    EXPECT_EQ(s.point_at(key), expected[key]) << "key=" << key;
  }
}

TEST(SpiralCurve, ContinuousForAnySide) {
  for (coord_t side : {coord_t{2}, coord_t{3}, coord_t{4}, coord_t{7}, coord_t{8}}) {
    const Universe u(2, side);
    const SpiralCurve s(u);
    for (index_t key = 1; key < u.cell_count(); ++key) {
      ASSERT_EQ(manhattan_distance(s.point_at(key - 1), s.point_at(key)), 1u)
          << "side=" << side << " key=" << key;
    }
  }
}

TEST(SpiralCurve, BijectiveRoundTrip) {
  for (coord_t side : {coord_t{1}, coord_t{4}, coord_t{9}}) {
    const Universe u(2, side);
    const SpiralCurve s(u);
    std::vector<bool> seen(u.cell_count(), false);
    for (index_t id = 0; id < u.cell_count(); ++id) {
      const Point cell = u.from_row_major(id);
      const index_t key = s.index_of(cell);
      ASSERT_LT(key, u.cell_count());
      ASSERT_FALSE(seen[key]);
      seen[key] = true;
      ASSERT_EQ(s.point_at(key), cell);
    }
  }
}

TEST(SpiralCurve, OuterRingBeforeInnerRings) {
  const Universe u(2, 8);
  const SpiralCurve s(u);
  // All 28 boundary cells take keys 0..27.
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point cell = u.from_row_major(id);
    const bool boundary = cell[0] == 0 || cell[1] == 0 || cell[0] == 7 || cell[1] == 7;
    if (boundary) {
      EXPECT_LT(s.index_of(cell), 28u);
    } else {
      EXPECT_GE(s.index_of(cell), 28u);
    }
  }
}

TEST(SpiralCurve, CenterIsLastForOddSide) {
  const Universe u(2, 5);
  const SpiralCurve s(u);
  EXPECT_EQ(s.point_at(u.cell_count() - 1), (Point{2, 2}));
}

TEST(SpiralCurve, ReportsContinuous) {
  EXPECT_TRUE(SpiralCurve(Universe(2, 4)).is_continuous());
}

TEST(SpiralCurve, NonTwoDimensionalUniverseThrows) {
  EXPECT_THROW(SpiralCurve(Universe(1, 8)), CurveArgumentError);
  EXPECT_THROW(SpiralCurve(Universe(3, 4)), CurveArgumentError);
}

}  // namespace
}  // namespace sfc
