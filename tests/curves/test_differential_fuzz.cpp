// Randomized differential checks across every curve implementation: for
// random configurations and random cells, encode/decode must invert each
// other, keys must stay in range, and curve distance must agree with the
// naive |pi(a) - pi(b)| evaluation.  Complements the exhaustive small-grid
// property sweep with larger, sampled universes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/curves/diagonal_curve.h"
#include "sfc/curves/peano_curve.h"
#include "sfc/curves/permutation_curve.h"
#include "sfc/curves/spiral_curve.h"
#include "sfc/curves/tiled_curve.h"
#include "sfc/rng/sampling.h"

namespace sfc {
namespace {

void fuzz_curve(const SpaceFillingCurve& curve, std::uint64_t seed,
                int samples) {
  const Universe& u = curve.universe();
  Xoshiro256 rng(seed);
  for (int trial = 0; trial < samples; ++trial) {
    const Point cell = random_cell(u, rng);
    const index_t key = curve.index_of(cell);
    ASSERT_LT(key, u.cell_count()) << curve.name();
    ASSERT_EQ(curve.point_at(key), cell) << curve.name();

    const index_t random_key = rng.next_below(u.cell_count());
    const Point decoded = curve.point_at(random_key);
    ASSERT_TRUE(u.contains(decoded)) << curve.name();
    ASSERT_EQ(curve.index_of(decoded), random_key) << curve.name();

    const Point other = random_cell(u, rng);
    const index_t ka = curve.index_of(cell), kb = curve.index_of(other);
    ASSERT_EQ(curve.curve_distance(cell, other), ka > kb ? ka - kb : kb - ka)
        << curve.name();
  }
}

TEST(DifferentialFuzz, FactoryFamiliesOnLargeGrids) {
  // Larger universes than the exhaustive sweep covers (up to 2^24 cells).
  struct Config {
    CurveFamily family;
    int dim;
    int bits;
  };
  const std::vector<Config> configs = {
      {CurveFamily::kZ, 2, 12},      {CurveFamily::kZ, 4, 6},
      {CurveFamily::kSimple, 3, 8},  {CurveFamily::kSnake, 3, 8},
      {CurveFamily::kGray, 2, 12},   {CurveFamily::kGray, 5, 4},
      {CurveFamily::kHilbert, 2, 12}, {CurveFamily::kHilbert, 3, 8},
      {CurveFamily::kHilbert, 6, 4},
  };
  for (const Config& config : configs) {
    const Universe u = Universe::pow2(config.dim, config.bits);
    const CurvePtr curve = make_curve(config.family, u, 1);
    fuzz_curve(*curve, 0xfeed + static_cast<std::uint64_t>(config.bits), 400);
  }
}

TEST(DifferentialFuzz, NonFactoryCurves) {
  fuzz_curve(PeanoCurve(Universe(2, 81)), 1, 400);
  fuzz_curve(PeanoCurve(Universe(3, 27)), 2, 400);
  fuzz_curve(DiagonalCurve(Universe(2, 100)), 3, 400);
  fuzz_curve(SpiralCurve(Universe(2, 101)), 4, 400);
  fuzz_curve(SpiralCurve(Universe(2, 64)), 5, 400);
  fuzz_curve(TiledCurve(Universe(2, 64), 8), 6, 400);
  fuzz_curve(TiledCurve(Universe(3, 16), 4), 7, 400);
}

TEST(DifferentialFuzz, RandomPermutationCurves) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Universe u(2, 16);
    const CurvePtr curve = PermutationCurve::random(u, seed);
    fuzz_curve(*curve, seed, 300);
  }
}

}  // namespace
}  // namespace sfc
