#include "sfc/curves/peano_curve.h"

#include <gtest/gtest.h>

#include <vector>

namespace sfc {
namespace {

class PeanoGrid : public ::testing::TestWithParam<std::pair<int, coord_t>> {};

TEST_P(PeanoGrid, ContinuousEverywhere) {
  const auto [d, side] = GetParam();
  const Universe u(d, side);
  const PeanoCurve p(u);
  for (index_t key = 1; key < u.cell_count(); ++key) {
    ASSERT_EQ(manhattan_distance(p.point_at(key - 1), p.point_at(key)), 1u)
        << "d=" << d << " side=" << side << " key=" << key;
  }
}

TEST_P(PeanoGrid, Bijective) {
  const auto [d, side] = GetParam();
  const Universe u(d, side);
  const PeanoCurve p(u);
  std::vector<bool> seen(u.cell_count(), false);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point cell = u.from_row_major(id);
    const index_t key = p.index_of(cell);
    ASSERT_LT(key, u.cell_count());
    ASSERT_FALSE(seen[key]);
    seen[key] = true;
    ASSERT_EQ(p.point_at(key), cell);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SidesAndDims, PeanoGrid,
    ::testing::Values(std::pair<int, coord_t>{1, 27},
                      std::pair<int, coord_t>{2, 3},
                      std::pair<int, coord_t>{2, 9},
                      std::pair<int, coord_t>{2, 27},
                      std::pair<int, coord_t>{3, 3},
                      std::pair<int, coord_t>{3, 9},
                      std::pair<int, coord_t>{4, 3}),
    [](const auto& name_info) {
      return "d" + std::to_string(name_info.param.first) + "_side" +
             std::to_string(name_info.param.second);
    });

TEST(PeanoCurve, ClassicTwoDimOrder3x3) {
  // The level-1 2-d Peano visits columns bottom-up, top-down, bottom-up —
  // Peano's original serpentine: with our dimension-1-most-significant
  // convention the first three cells walk dimension 2.
  const Universe u(2, 3);
  const PeanoCurve p(u);
  EXPECT_EQ(p.point_at(0), (Point{0, 0}));
  EXPECT_EQ(p.point_at(1), (Point{0, 1}));
  EXPECT_EQ(p.point_at(2), (Point{0, 2}));
  EXPECT_EQ(p.point_at(3), (Point{1, 2}));
  EXPECT_EQ(p.point_at(4), (Point{1, 1}));
  EXPECT_EQ(p.point_at(5), (Point{1, 0}));
  EXPECT_EQ(p.point_at(6), (Point{2, 0}));
  EXPECT_EQ(p.point_at(7), (Point{2, 1}));
  EXPECT_EQ(p.point_at(8), (Point{2, 2}));
}

TEST(PeanoCurve, EndsAtOppositeCornerIn2D) {
  // The 2-d Peano runs corner to corner.
  const Universe u(2, 9);
  const PeanoCurve p(u);
  EXPECT_EQ(p.point_at(0), (Point{0, 0}));
  EXPECT_EQ(p.point_at(u.cell_count() - 1), (Point{8, 8}));
}

TEST(PeanoCurve, OneDimensionalIsIdentity) {
  const Universe u(1, 27);
  const PeanoCurve p(u);
  for (coord_t x = 0; x < 27; ++x) {
    EXPECT_EQ(p.index_of(Point{x}), x);
  }
}

TEST(PeanoCurve, LevelCount) {
  EXPECT_EQ(PeanoCurve(Universe(2, 1)).level_count(), 0);
  EXPECT_EQ(PeanoCurve(Universe(2, 3)).level_count(), 1);
  EXPECT_EQ(PeanoCurve(Universe(2, 27)).level_count(), 3);
}

TEST(PeanoCurveDeath, RejectsNonPowerOfThreeSide) {
  EXPECT_DEATH(PeanoCurve(Universe(2, 4)), "");
  EXPECT_DEATH(PeanoCurve(Universe(2, 6)), "");
}

TEST(PeanoCurve, ReportsContinuous) {
  EXPECT_TRUE(PeanoCurve(Universe(2, 9)).is_continuous());
}

}  // namespace
}  // namespace sfc
