// Conformance of the batched codec with the scalar virtuals: for every
// factory curve family, index_of_batch/point_at_batch must agree element-wise
// with index_of/point_at — including the curves that keep the generic
// base-class fallback (permutation curves) and partial/subspan buffers.
#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "sfc/curves/curve_factory.h"
#include "sfc/curves/permutation_curve.h"
#include "sfc/curves/zcurve.h"
#include "sfc/rng/xoshiro256.h"

namespace sfc {
namespace {

// All cells of the universe in row-major order.
std::vector<Point> all_cells(const Universe& u) {
  std::vector<Point> cells(u.cell_count());
  for (index_t id = 0; id < u.cell_count(); ++id) {
    cells[id] = u.from_row_major(id);
  }
  return cells;
}

void expect_batch_matches_scalar(const SpaceFillingCurve& curve) {
  const Universe& u = curve.universe();
  const index_t n = u.cell_count();
  const std::vector<Point> cells = all_cells(u);

  // Encode: full batch vs scalar.
  std::vector<index_t> batch_keys(n);
  curve.index_of_batch(cells, batch_keys);
  for (index_t id = 0; id < n; ++id) {
    ASSERT_EQ(batch_keys[id], curve.index_of(cells[id]))
        << curve.name() << " dim=" << u.dim() << " side=" << u.side()
        << " cell=" << cells[id].to_string();
  }

  // Decode: shuffled key order vs scalar.
  std::vector<index_t> keys(n);
  std::iota(keys.begin(), keys.end(), index_t{0});
  Xoshiro256 rng(42);
  for (index_t i = n; i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.next_below(i)]);
  }
  std::vector<Point> batch_cells(n, Point::zero(u.dim()));
  curve.point_at_batch(keys, batch_cells);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(batch_cells[i], curve.point_at(keys[i]))
        << curve.name() << " dim=" << u.dim() << " side=" << u.side()
        << " key=" << keys[i];
  }

  // Subspan round trip: batch over a strict middle slice of the buffers.
  if (n >= 4) {
    const std::size_t offset = n / 4;
    const std::size_t len = n / 2;
    std::vector<index_t> slice_keys(len);
    curve.index_of_batch(std::span<const Point>(cells).subspan(offset, len),
                         slice_keys);
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(slice_keys[i], curve.index_of(cells[offset + i]));
    }
  }

  // point_range: contiguous window decode against scalar point_at.
  const index_t window = std::min<index_t>(n, 100);
  std::vector<Point> range_cells(window, Point::zero(u.dim()));
  const index_t first = n > window ? (n - window) / 2 : 0;
  curve.point_range(first, range_cells);
  for (index_t i = 0; i < window; ++i) {
    EXPECT_EQ(range_cells[i], curve.point_at(first + i));
  }
}

TEST(BatchCodec, FactoryCurvesAgreeWithScalar) {
  for (const CurveFamily family : all_curve_families()) {
    for (int dim = 1; dim <= 3; ++dim) {
      for (const coord_t side : {2u, 3u, 4u, 5u, 8u, 16u, 32u}) {
        if (family_requires_pow2(family) && (side & (side - 1)) != 0) continue;
        // Keep the permutation-table families within a sane cell budget.
        const Universe u(dim, side);
        if (family == CurveFamily::kRandom && u.cell_count() > (1u << 12)) {
          continue;
        }
        const CurvePtr curve = make_curve(family, u, /*seed=*/7);
        SCOPED_TRACE(curve->name());
        expect_batch_matches_scalar(*curve);
      }
    }
  }
}

TEST(BatchCodec, PermutationCurveUsesGenericFallback) {
  // An explicit permutation table exercises the base-class batch loop.
  const Universe u(2, 4);
  std::vector<index_t> table(u.cell_count());
  std::iota(table.begin(), table.end(), index_t{0});
  std::reverse(table.begin(), table.end());
  const PermutationCurve curve(u, table, "reversed");
  expect_batch_matches_scalar(curve);
}

TEST(BatchCodec, PermutedZCurveFallback) {
  // PermutedZCurve does not override the batch virtuals; the generic loop
  // must still match its scalar codec.
  const Universe u = Universe::pow2(3, 3);
  const PermutedZCurve curve(u, {2, 0, 1});
  expect_batch_matches_scalar(curve);
}

TEST(BatchCodec, HighLevelBitsSampled) {
  // level_bits = 17 exceeds the 2-d magic-mask ceiling (16), so this drives
  // the branch where the BMI2 kernels (no ceiling) and the generic
  // interleave fallback diverge — sampled, since the universe has 2^34
  // cells.  The SFC_NO_BMI2 ctest entry reruns it on the fallback path.
  for (const CurveFamily family :
       {CurveFamily::kZ, CurveFamily::kGray, CurveFamily::kHilbert}) {
    const Universe u = Universe::pow2(2, 17);
    const CurvePtr curve = make_curve(family, u, /*seed=*/3);
    SCOPED_TRACE(curve->name());
    Xoshiro256 rng(99);
    const std::size_t samples = 4096;
    std::vector<Point> cells(samples, Point::zero(2));
    for (auto& cell : cells) {
      cell[0] = static_cast<coord_t>(rng.next_below(u.side()));
      cell[1] = static_cast<coord_t>(rng.next_below(u.side()));
    }
    std::vector<index_t> batch_keys(samples);
    curve->index_of_batch(cells, batch_keys);
    for (std::size_t i = 0; i < samples; ++i) {
      ASSERT_EQ(batch_keys[i], curve->index_of(cells[i]))
          << "cell=" << cells[i].to_string();
    }
    std::vector<index_t> keys(samples);
    for (auto& key : keys) key = rng.next_below(u.cell_count());
    std::vector<Point> batch_cells(samples, Point::zero(2));
    curve->point_at_batch(keys, batch_cells);
    for (std::size_t i = 0; i < samples; ++i) {
      ASSERT_EQ(batch_cells[i], curve->point_at(keys[i])) << "key=" << keys[i];
    }
  }
}

TEST(BatchCodec, EmptySpansAreANoOp) {
  const Universe u = Universe::pow2(2, 4);
  const ZCurve curve(u);
  curve.index_of_batch({}, {});
  curve.point_at_batch({}, {});
  curve.point_range(0, {});
}

TEST(BatchCodec, LargeWindowCrossesPointRangeChunks) {
  // point_range chunks internally at 1024 keys; a window larger than one
  // chunk must still agree with scalar decode at every position.
  const Universe u = Universe::pow2(2, 6);  // 4096 cells
  const ZCurve curve(u);
  std::vector<Point> cells(u.cell_count(), Point::zero(2));
  curve.point_range(0, cells);
  for (index_t key = 0; key < u.cell_count(); ++key) {
    ASSERT_EQ(cells[key], curve.point_at(key)) << "key=" << key;
  }
}

TEST(BatchCodecDeathTest, MismatchedSpanSizesAbort) {
  const Universe u = Universe::pow2(2, 2);
  const ZCurve curve(u);
  std::vector<Point> cells(4, Point::zero(2));
  std::vector<index_t> keys(3);
  EXPECT_DEATH(curve.index_of_batch(cells, keys), "");
}

}  // namespace
}  // namespace sfc
