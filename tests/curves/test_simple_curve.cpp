#include "sfc/curves/simple_curve.h"

#include <gtest/gtest.h>

#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"

namespace sfc {
namespace {

TEST(SimpleCurve, Equation8) {
  // S(α) = Σ x_i side^{i-1}: dimension 1 varies fastest.
  const Universe u(3, 4);
  const SimpleCurve s(u);
  EXPECT_EQ(s.index_of(Point{0, 0, 0}), 0u);
  EXPECT_EQ(s.index_of(Point{1, 0, 0}), 1u);
  EXPECT_EQ(s.index_of(Point{0, 1, 0}), 4u);
  EXPECT_EQ(s.index_of(Point{0, 0, 1}), 16u);
  EXPECT_EQ(s.index_of(Point{3, 2, 1}), 3u + 2u * 4u + 1u * 16u);
}

TEST(SimpleCurve, RoundTrip) {
  const Universe u(2, 7);  // arbitrary (non power-of-two) side
  const SimpleCurve s(u);
  for (index_t key = 0; key < u.cell_count(); ++key) {
    EXPECT_EQ(s.index_of(s.point_at(key)), key);
  }
}

TEST(SimpleCurve, NeighborDistancesAreSidePowers) {
  // Neighbors along dimension i are side^{i-1} apart on the curve.
  const Universe u(3, 8);
  const SimpleCurve s(u);
  const Point center{3, 3, 3};
  EXPECT_EQ(s.curve_distance(center, Point{4, 3, 3}), 1u);
  EXPECT_EQ(s.curve_distance(center, Point{2, 3, 3}), 1u);
  EXPECT_EQ(s.curve_distance(center, Point{3, 4, 3}), 8u);
  EXPECT_EQ(s.curve_distance(center, Point{3, 3, 4}), 64u);
}

TEST(SimpleCurve, InteriorCellStretchMatchesTheorem3Formula) {
  // Proof of Theorem 3: interior cells have
  // δavg = (1/d) (n-1)/(side-1).
  for (int d = 1; d <= 3; ++d) {
    const Universe u(d, 8);
    const SimpleCurve s(u);
    Point interior = Point::zero(d);
    for (int i = 0; i < d; ++i) interior[i] = 3;
    EXPECT_NEAR(cell_average_stretch(s, interior),
                bounds::simple_interior_cell_stretch(u), 1e-12)
        << "d=" << d;
  }
}

TEST(SimpleCurve, MaxStretchIsNPow1m1dEverywhere) {
  // Proof of Proposition 2: every cell has a dimension-d neighbor at curve
  // distance side^{d-1}.
  const Universe u(2, 8);
  const SimpleCurve s(u);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    EXPECT_EQ(cell_maximum_stretch(s, u.from_row_major(id)), 8u);
  }
}

TEST(SimpleCurve, MatchesUniverseRowMajor) {
  const Universe u(4, 3);
  const SimpleCurve s(u);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    EXPECT_EQ(s.index_of(u.from_row_major(id)), id);
  }
}

}  // namespace
}  // namespace sfc
