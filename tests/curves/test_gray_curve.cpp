#include "sfc/curves/gray_curve.h"

#include <gtest/gtest.h>

#include <vector>

#include "sfc/curves/bitops.h"

namespace sfc {
namespace {

TEST(GrayCurve, RoundTrip) {
  const Universe u = Universe::pow2(2, 3);
  const GrayCurve g(u);
  for (index_t key = 0; key < u.cell_count(); ++key) {
    EXPECT_EQ(g.index_of(g.point_at(key)), key);
  }
}

TEST(GrayCurve, Bijectivity) {
  const Universe u = Universe::pow2(3, 2);
  const GrayCurve g(u);
  std::vector<bool> seen(u.cell_count(), false);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const index_t key = g.index_of(u.from_row_major(id));
    ASSERT_LT(key, u.cell_count());
    EXPECT_FALSE(seen[key]);
    seen[key] = true;
  }
}

TEST(GrayCurve, ConsecutiveKeysDifferByPowerOfTwoAlongOneDim) {
  // Consecutive positions differ in exactly one bit of the interleaved
  // string, i.e. the cells differ in one dimension by a power of two.
  const Universe u = Universe::pow2(2, 3);
  const GrayCurve g(u);
  for (index_t key = 1; key < u.cell_count(); ++key) {
    const Point a = g.point_at(key - 1);
    const Point b = g.point_at(key);
    int dims_changed = 0;
    for (int i = 0; i < 2; ++i) {
      if (a[i] != b[i]) {
        ++dims_changed;
        const coord_t diff = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
        EXPECT_EQ(diff & (diff - 1), 0u) << "jump must be a power of two";
      }
    }
    EXPECT_EQ(dims_changed, 1);
  }
}

TEST(GrayCurve, FirstStepsFollowGraySequence) {
  // Positions 0,1,2,3 have interleaved strings gray(0..3) = 00,01,11,10.
  const Universe u = Universe::pow2(2, 1);
  const GrayCurve g(u);
  EXPECT_EQ(g.point_at(0), deinterleave(0b00, 2, 1));
  EXPECT_EQ(g.point_at(1), deinterleave(0b01, 2, 1));
  EXPECT_EQ(g.point_at(2), deinterleave(0b11, 2, 1));
  EXPECT_EQ(g.point_at(3), deinterleave(0b10, 2, 1));
}

TEST(GrayCurve, StartsAtOrigin) {
  const Universe u = Universe::pow2(3, 3);
  const GrayCurve g(u);
  EXPECT_EQ(g.point_at(0), (Point{0, 0, 0}));
}

}  // namespace
}  // namespace sfc
