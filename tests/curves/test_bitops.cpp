#include "sfc/curves/bitops.h"

#include <gtest/gtest.h>

#include "sfc/rng/xoshiro256.h"

namespace sfc {
namespace {

TEST(SpreadBits, GenericRoundTrip) {
  Xoshiro256 rng(1);
  for (int stride = 1; stride <= 6; ++stride) {
    for (int bits = 1; bits <= 10; ++bits) {
      for (int trial = 0; trial < 20; ++trial) {
        const std::uint64_t v = rng.next() & ((1ull << bits) - 1);
        EXPECT_EQ(compact_bits(spread_bits(v, stride, bits), stride, bits), v);
      }
    }
  }
}

TEST(SpreadBits, StrideOneIsIdentity) {
  EXPECT_EQ(spread_bits(0b1011, 1, 4), 0b1011u);
  EXPECT_EQ(compact_bits(0b1011, 1, 4), 0b1011u);
}

TEST(SpreadBits, KnownPatterns) {
  // Bit b of v lands at position b*stride.
  EXPECT_EQ(spread_bits(0b11, 2, 2), 0b101u);
  EXPECT_EQ(spread_bits(0b11, 3, 2), 0b1001u);
  EXPECT_EQ(spread_bits(0b101, 2, 3), 0b10001u);
}

TEST(SpreadBits2, MatchesGeneric) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    const auto v = static_cast<std::uint32_t>(rng.next() & 0xffff);
    EXPECT_EQ(spread_bits_2(v), spread_bits(v, 2, 16));
    EXPECT_EQ(compact_bits_2(spread_bits_2(v)), v);
  }
}

TEST(SpreadBits3, MatchesGeneric) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const auto v = static_cast<std::uint32_t>(rng.next() & 0x1fffff);
    EXPECT_EQ(spread_bits_3(v), spread_bits(v, 3, 21));
    EXPECT_EQ(compact_bits_3(spread_bits_3(v)), v);
  }
}

TEST(Interleave, PaperExample) {
  // Z(101, 010, 011) = 100011101 (d=3, k=3) — §IV-B.
  const Point p{0b101, 0b010, 0b011};
  EXPECT_EQ(interleave(p, 3), 0b100011101u);
}

TEST(Interleave, DimensionOneIsMostSignificant) {
  // d=2, k=1: key = x1_bit << 1 | x2_bit.
  EXPECT_EQ(interleave(Point{0, 0}, 1), 0u);
  EXPECT_EQ(interleave(Point{0, 1}, 1), 1u);
  EXPECT_EQ(interleave(Point{1, 0}, 1), 2u);
  EXPECT_EQ(interleave(Point{1, 1}, 1), 3u);
}

TEST(Interleave, RoundTripAllDims) {
  Xoshiro256 rng(4);
  for (int d = 1; d <= 6; ++d) {
    for (int k = 1; k <= 4; ++k) {
      for (int trial = 0; trial < 50; ++trial) {
        Point p = Point::zero(d);
        for (int i = 0; i < d; ++i) {
          p[i] = static_cast<coord_t>(rng.next_below(1ull << k));
        }
        const index_t key = interleave(p, k);
        EXPECT_EQ(deinterleave(key, d, k), p);
      }
    }
  }
}

TEST(Interleave, FastPathsMatchGenericLoop) {
  // The d=2/d=3 magic-mask paths must agree with the generic element loop
  // (exercised via large level_bits that bypass the fast path).
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    Point p2 = Point::zero(2);
    p2[0] = static_cast<coord_t>(rng.next_below(1u << 12));
    p2[1] = static_cast<coord_t>(rng.next_below(1u << 12));
    index_t generic = 0;
    for (int i = 0; i < 2; ++i) {
      generic |= spread_bits(p2[i], 2, 12) << (1 - i);
    }
    EXPECT_EQ(interleave(p2, 12), generic);
  }
}

TEST(Gray, EncodeKnownValues) {
  EXPECT_EQ(gray_encode(0), 0u);
  EXPECT_EQ(gray_encode(1), 1u);
  EXPECT_EQ(gray_encode(2), 3u);
  EXPECT_EQ(gray_encode(3), 2u);
  EXPECT_EQ(gray_encode(4), 6u);
}

TEST(Gray, RoundTrip) {
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint64_t v = rng.next();
    EXPECT_EQ(gray_decode(gray_encode(v)), v);
  }
}

TEST(Gray, ConsecutiveCodesDifferInOneBit) {
  for (std::uint64_t v = 0; v < 1024; ++v) {
    const std::uint64_t diff = gray_encode(v) ^ gray_encode(v + 1);
    EXPECT_EQ(diff & (diff - 1), 0u);  // power of two
    EXPECT_NE(diff, 0u);
  }
}

}  // namespace
}  // namespace sfc
