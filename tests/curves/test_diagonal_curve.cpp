#include "sfc/curves/diagonal_curve.h"

#include <gtest/gtest.h>

#include <vector>

#include "sfc/curves/curve_error.h"

namespace sfc {
namespace {

TEST(DiagonalCurve, JpegZigzagOrderOn8x8) {
  // The first sixteen entries of the standard JPEG zigzag scan, written as
  // (x1 = column, x2 = row).
  const Universe u(2, 8);
  const DiagonalCurve z(u);
  const std::vector<Point> expected = {
      {0, 0}, {1, 0}, {0, 1}, {0, 2}, {1, 1}, {2, 0}, {3, 0}, {2, 1},
      {1, 2}, {0, 3}, {0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}, {5, 0}};
  for (std::size_t key = 0; key < expected.size(); ++key) {
    EXPECT_EQ(z.point_at(key), expected[key]) << "key=" << key;
  }
}

TEST(DiagonalCurve, BijectiveRoundTripAnySide) {
  for (coord_t side : {coord_t{1}, coord_t{2}, coord_t{5}, coord_t{8}, coord_t{13}}) {
    const Universe u(2, side);
    const DiagonalCurve z(u);
    std::vector<bool> seen(u.cell_count(), false);
    for (index_t id = 0; id < u.cell_count(); ++id) {
      const Point cell = u.from_row_major(id);
      const index_t key = z.index_of(cell);
      ASSERT_LT(key, u.cell_count()) << "side=" << side;
      ASSERT_FALSE(seen[key]) << "side=" << side;
      seen[key] = true;
      ASSERT_EQ(z.point_at(key), cell) << "side=" << side;
    }
  }
}

TEST(DiagonalCurve, DiagonalsAreContiguousKeyRanges) {
  const Universe u(2, 6);
  const DiagonalCurve z(u);
  // Every anti-diagonal s occupies one contiguous key interval.
  for (coord_t s = 0; s <= 2 * (u.side() - 1); ++s) {
    index_t min_key = u.cell_count(), max_key = 0;
    coord_t count = 0;
    for (coord_t x = 0; x < u.side(); ++x) {
      if (s < x || s - x >= u.side()) continue;
      const index_t key = z.index_of(Point{x, s - x});
      min_key = std::min(min_key, key);
      max_key = std::max(max_key, key);
      ++count;
    }
    EXPECT_EQ(max_key - min_key + 1, count) << "s=" << s;
  }
}

TEST(DiagonalCurve, EndsAtFarCorner) {
  const Universe u(2, 7);
  const DiagonalCurve z(u);
  EXPECT_EQ(z.point_at(0), (Point{0, 0}));
  EXPECT_EQ(z.point_at(u.cell_count() - 1), (Point{6, 6}));
}

TEST(DiagonalCurve, NonTwoDimensionalUniverseThrows) {
  EXPECT_THROW(DiagonalCurve(Universe(1, 8)), CurveArgumentError);
  EXPECT_THROW(DiagonalCurve(Universe(3, 4)), CurveArgumentError);
}

}  // namespace
}  // namespace sfc
