#include "sfc/curves/permutation_curve.h"

#include <gtest/gtest.h>

#include <vector>

#include "sfc/curves/curve_error.h"

namespace sfc {
namespace {

TEST(PermutationCurve, ExplicitTable) {
  const Universe u(1, 4);
  const PermutationCurve curve(u, {2, 0, 3, 1}, "test");
  EXPECT_EQ(curve.name(), "test");
  EXPECT_EQ(curve.index_of(Point{0}), 2u);
  EXPECT_EQ(curve.index_of(Point{1}), 0u);
  EXPECT_EQ(curve.index_of(Point{2}), 3u);
  EXPECT_EQ(curve.index_of(Point{3}), 1u);
  EXPECT_EQ(curve.point_at(0), (Point{1}));
  EXPECT_EQ(curve.point_at(1), (Point{3}));
  EXPECT_EQ(curve.point_at(2), (Point{0}));
  EXPECT_EQ(curve.point_at(3), (Point{2}));
}

TEST(PermutationCurve, IdentityPermutationMatchesSimple) {
  const Universe u(2, 3);
  std::vector<index_t> keys(u.cell_count());
  for (index_t i = 0; i < u.cell_count(); ++i) keys[i] = i;
  const PermutationCurve curve(u, keys);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    EXPECT_EQ(curve.index_of(u.from_row_major(id)), id);
  }
}

TEST(PermutationCurve, RandomIsBijective) {
  const Universe u(2, 5);
  const CurvePtr curve = PermutationCurve::random(u, 99);
  std::vector<bool> seen(u.cell_count(), false);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const index_t key = curve->index_of(u.from_row_major(id));
    ASSERT_LT(key, u.cell_count());
    EXPECT_FALSE(seen[key]);
    seen[key] = true;
  }
}

TEST(PermutationCurve, RandomRoundTrip) {
  const Universe u(3, 3);
  const CurvePtr curve = PermutationCurve::random(u, 7);
  for (index_t key = 0; key < u.cell_count(); ++key) {
    EXPECT_EQ(curve->index_of(curve->point_at(key)), key);
  }
}

TEST(PermutationCurve, RandomDeterministicInSeed) {
  const Universe u(2, 4);
  const CurvePtr a = PermutationCurve::random(u, 5);
  const CurvePtr b = PermutationCurve::random(u, 5);
  const CurvePtr c = PermutationCurve::random(u, 6);
  bool all_equal = true, any_diff_c = false;
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point p = u.from_row_major(id);
    if (a->index_of(p) != b->index_of(p)) all_equal = false;
    if (a->index_of(p) != c->index_of(p)) any_diff_c = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(PermutationCurve, NameEncodesSeed) {
  const Universe u(1, 2);
  EXPECT_EQ(PermutationCurve::random(u, 31)->name(), "random-31");
}

TEST(PermutationCurve, InvalidTablesThrow) {
  const Universe u(1, 4);
  // Wrong size.
  EXPECT_THROW(PermutationCurve(u, {0, 1, 2}), CurveArgumentError);
  // Out-of-range key.
  EXPECT_THROW(PermutationCurve(u, {0, 1, 2, 4}), CurveArgumentError);
  // Duplicate key.
  EXPECT_THROW(PermutationCurve(u, {0, 1, 2, 2}), CurveArgumentError);
}

}  // namespace
}  // namespace sfc
