#include "sfc/curves/toy_curves.h"

#include <gtest/gtest.h>

#include "sfc/core/nn_stretch.h"

namespace sfc {
namespace {

TEST(ToyCurves, Pi1Order) {
  // π1 orders the cells C, A, B, D.
  const CurvePtr pi1 = make_figure1_pi1();
  EXPECT_EQ(figure1_label(pi1->point_at(0)), 'C');
  EXPECT_EQ(figure1_label(pi1->point_at(1)), 'A');
  EXPECT_EQ(figure1_label(pi1->point_at(2)), 'B');
  EXPECT_EQ(figure1_label(pi1->point_at(3)), 'D');
}

TEST(ToyCurves, Pi2Order) {
  // π2 orders the cells A, B, C, D (self-intersecting: the paper's example
  // of why SFCs-as-bijections is the more general class).
  const CurvePtr pi2 = make_figure1_pi2();
  EXPECT_EQ(figure1_label(pi2->point_at(0)), 'A');
  EXPECT_EQ(figure1_label(pi2->point_at(1)), 'B');
  EXPECT_EQ(figure1_label(pi2->point_at(2)), 'C');
  EXPECT_EQ(figure1_label(pi2->point_at(3)), 'D');
}

TEST(ToyCurves, PerCellStretchValuesPi1) {
  // §III: δavg is 1.5 for every cell of π1.
  const CurvePtr pi1 = make_figure1_pi1();
  const Universe& u = pi1->universe();
  for (index_t id = 0; id < u.cell_count(); ++id) {
    EXPECT_DOUBLE_EQ(cell_average_stretch(*pi1, u.from_row_major(id)), 1.5);
  }
}

TEST(ToyCurves, PaperWorkedMetricValues) {
  // §III: Davg(π1)=1.5, Davg(π2)=2, Dmax(π1)=2, Dmax(π2)=2.5.
  const NNStretchResult r1 = compute_nn_stretch(*make_figure1_pi1());
  const NNStretchResult r2 = compute_nn_stretch(*make_figure1_pi2());
  EXPECT_DOUBLE_EQ(r1.average_average, 1.5);
  EXPECT_DOUBLE_EQ(r1.average_maximum, 2.0);
  EXPECT_DOUBLE_EQ(r2.average_average, 2.0);
  EXPECT_DOUBLE_EQ(r2.average_maximum, 2.5);
}

TEST(ToyCurves, LabelsCoverAllFourCells) {
  const Universe u(2, 2);
  std::string labels;
  for (index_t id = 0; id < 4; ++id) {
    labels += figure1_label(u.from_row_major(id));
  }
  // Row-major: (0,0)=D, (1,0)=B, (0,1)=A, (1,1)=C.
  EXPECT_EQ(labels, "DBAC");
}

}  // namespace
}  // namespace sfc
