#include "sfc/curves/snake_curve.h"

#include <gtest/gtest.h>

#include <vector>

namespace sfc {
namespace {

TEST(SnakeCurve, TwoDimensionalOrder) {
  // 3x3 snake: row 0 left-to-right, row 1 right-to-left, ...
  const Universe u(2, 3);
  const SnakeCurve s(u);
  EXPECT_EQ(s.index_of(Point{0, 0}), 0u);
  EXPECT_EQ(s.index_of(Point{1, 0}), 1u);
  EXPECT_EQ(s.index_of(Point{2, 0}), 2u);
  EXPECT_EQ(s.index_of(Point{2, 1}), 3u);
  EXPECT_EQ(s.index_of(Point{1, 1}), 4u);
  EXPECT_EQ(s.index_of(Point{0, 1}), 5u);
  EXPECT_EQ(s.index_of(Point{0, 2}), 6u);
  EXPECT_EQ(s.index_of(Point{1, 2}), 7u);
  EXPECT_EQ(s.index_of(Point{2, 2}), 8u);
}

TEST(SnakeCurve, IsContinuousEverywhere) {
  // Consecutive keys are nearest neighbors — in every dimension and for
  // non-power-of-two sides.
  for (const auto& [d, side] : std::vector<std::pair<int, coord_t>>{
           {1, 9}, {2, 4}, {2, 5}, {3, 3}, {3, 4}, {4, 3}}) {
    const Universe u(d, side);
    const SnakeCurve s(u);
    for (index_t key = 1; key < u.cell_count(); ++key) {
      EXPECT_EQ(manhattan_distance(s.point_at(key - 1), s.point_at(key)), 1u)
          << "d=" << d << " side=" << side << " key=" << key;
    }
  }
}

TEST(SnakeCurve, RoundTrip) {
  const Universe u(3, 5);
  const SnakeCurve s(u);
  for (index_t key = 0; key < u.cell_count(); ++key) {
    EXPECT_EQ(s.index_of(s.point_at(key)), key);
  }
}

TEST(SnakeCurve, Bijectivity) {
  const Universe u(3, 4);
  const SnakeCurve s(u);
  std::vector<bool> seen(u.cell_count(), false);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const index_t key = s.index_of(u.from_row_major(id));
    ASSERT_LT(key, u.cell_count());
    EXPECT_FALSE(seen[key]);
    seen[key] = true;
  }
}

TEST(SnakeCurve, ReportsContinuous) {
  const Universe u(2, 4);
  EXPECT_TRUE(SnakeCurve(u).is_continuous());
}

TEST(SnakeCurve, StartsAtOrigin) {
  const Universe u(3, 6);
  const SnakeCurve s(u);
  EXPECT_EQ(s.point_at(0), (Point{0, 0, 0}));
}

}  // namespace
}  // namespace sfc
