#include "sfc/curves/hilbert_curve.h"

#include <gtest/gtest.h>

#include <vector>

namespace sfc {
namespace {

class HilbertContinuity : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(HilbertContinuity, ConsecutiveKeysAreNearestNeighbors) {
  const auto [d, k] = GetParam();
  const Universe u = Universe::pow2(d, k);
  const HilbertCurve h(u);
  for (index_t key = 1; key < u.cell_count(); ++key) {
    ASSERT_EQ(manhattan_distance(h.point_at(key - 1), h.point_at(key)), 1u)
        << "d=" << d << " k=" << k << " key=" << key;
  }
}

TEST_P(HilbertContinuity, Bijective) {
  const auto [d, k] = GetParam();
  const Universe u = Universe::pow2(d, k);
  const HilbertCurve h(u);
  std::vector<bool> seen(u.cell_count(), false);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point p = u.from_row_major(id);
    const index_t key = h.index_of(p);
    ASSERT_LT(key, u.cell_count());
    ASSERT_FALSE(seen[key]);
    seen[key] = true;
    ASSERT_EQ(h.point_at(key), p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndLevels, HilbertContinuity,
    ::testing::Values(std::pair{2, 1}, std::pair{2, 2}, std::pair{2, 3},
                      std::pair{2, 4}, std::pair{3, 1}, std::pair{3, 2},
                      std::pair{3, 3}, std::pair{4, 1}, std::pair{4, 2},
                      std::pair{5, 1}, std::pair{5, 2}, std::pair{6, 1}),
    [](const auto& name_info) {
      return "d" + std::to_string(name_info.param.first) + "_k" +
             std::to_string(name_info.param.second);
    });

TEST(HilbertCurve, StartsAtOrigin) {
  for (int d = 2; d <= 5; ++d) {
    const Universe u = Universe::pow2(d, 2);
    const HilbertCurve h(u);
    EXPECT_EQ(u.row_major_index(h.point_at(0)), 0u) << "d=" << d;
  }
}

TEST(HilbertCurve, TwoDimFirstQuadrantStaysTogether) {
  // The first quarter of the keys covers exactly one 2^{k-1} quadrant — the
  // defining recursive property of the Hilbert construction.
  const Universe u = Universe::pow2(2, 3);
  const HilbertCurve h(u);
  const index_t quarter = u.cell_count() / 4;
  // Identify the quadrant of key 0.
  const Point first = h.point_at(0);
  const coord_t half = u.side() / 2;
  const bool qx = first[0] >= half, qy = first[1] >= half;
  for (index_t key = 0; key < quarter; ++key) {
    const Point p = h.point_at(key);
    EXPECT_EQ(p[0] >= half, qx) << "key=" << key;
    EXPECT_EQ(p[1] >= half, qy) << "key=" << key;
  }
}

TEST(HilbertCurve, EndpointIsAdjacentCornerIn2D) {
  // The 2-d Hilbert curve ends at a corner adjacent to its start corner.
  const Universe u = Universe::pow2(2, 4);
  const HilbertCurve h(u);
  const Point start = h.point_at(0);
  const Point end = h.point_at(u.cell_count() - 1);
  EXPECT_EQ(start, (Point{0, 0}));
  // End must be at distance side-1 along exactly one axis.
  const std::uint64_t dist = manhattan_distance(start, end);
  EXPECT_EQ(dist, u.side() - 1u);
}

TEST(HilbertCurve, OneDimensionalIsIdentity) {
  const Universe u = Universe::pow2(1, 5);
  const HilbertCurve h(u);
  for (coord_t x = 0; x < u.side(); ++x) {
    EXPECT_EQ(h.index_of(Point{x}), x);
    EXPECT_EQ(h.point_at(x), (Point{x}));
  }
}

TEST(HilbertCurve, ReportsContinuous) {
  EXPECT_TRUE(HilbertCurve(Universe::pow2(2, 2)).is_continuous());
}

}  // namespace
}  // namespace sfc
