#include "sfc/curves/tiled_curve.h"

#include <gtest/gtest.h>

#include "sfc/apps/range_query.h"
#include "sfc/curves/simple_curve.h"

namespace sfc {
namespace {

TEST(TiledCurve, BijectiveRoundTrip) {
  for (coord_t tile : {coord_t{1}, coord_t{2}, coord_t{4}, coord_t{8}}) {
    const Universe u(2, 8);
    const TiledCurve t(u, tile);
    std::vector<bool> seen(u.cell_count(), false);
    for (index_t id = 0; id < u.cell_count(); ++id) {
      const Point cell = u.from_row_major(id);
      const index_t key = t.index_of(cell);
      ASSERT_LT(key, u.cell_count());
      ASSERT_FALSE(seen[key]) << "tile=" << tile;
      seen[key] = true;
      ASSERT_EQ(t.point_at(key), cell);
    }
  }
}

TEST(TiledCurve, TileOneIsSimpleCurve) {
  const Universe u(2, 6);
  const TiledCurve t(u, 1);
  const SimpleCurve s(u);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point cell = u.from_row_major(id);
    EXPECT_EQ(t.index_of(cell), s.index_of(cell));
  }
}

TEST(TiledCurve, FullTileIsSimpleCurve) {
  const Universe u(2, 6);
  const TiledCurve t(u, 6);
  const SimpleCurve s(u);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point cell = u.from_row_major(id);
    EXPECT_EQ(t.index_of(cell), s.index_of(cell));
  }
}

TEST(TiledCurve, EveryTileIsOneContiguousRun) {
  const Universe u(2, 8);
  const TiledCurve t(u, 4);
  for (coord_t tx = 0; tx < 2; ++tx) {
    for (coord_t ty = 0; ty < 2; ++ty) {
      const Box tile(Point{static_cast<coord_t>(4 * tx), static_cast<coord_t>(4 * ty)},
                     Point{static_cast<coord_t>(4 * tx + 3),
                           static_cast<coord_t>(4 * ty + 3)});
      EXPECT_EQ(count_key_runs(t, tile), 1u);
    }
  }
}

TEST(TiledCurve, KeysWithinTileAreRowMajor) {
  const Universe u(2, 4);
  const TiledCurve t(u, 2);
  // First tile: (0,0) (1,0) (0,1) (1,1) -> keys 0..3.
  EXPECT_EQ(t.index_of(Point{0, 0}), 0u);
  EXPECT_EQ(t.index_of(Point{1, 0}), 1u);
  EXPECT_EQ(t.index_of(Point{0, 1}), 2u);
  EXPECT_EQ(t.index_of(Point{1, 1}), 3u);
  // Second tile starts at (2,0).
  EXPECT_EQ(t.index_of(Point{2, 0}), 4u);
}

TEST(TiledCurve, WorksIn3D) {
  const Universe u(3, 4);
  const TiledCurve t(u, 2);
  for (index_t key = 0; key < u.cell_count(); ++key) {
    EXPECT_EQ(t.index_of(t.point_at(key)), key);
  }
}

TEST(TiledCurve, NameEncodesTileSide) {
  EXPECT_EQ(TiledCurve(Universe(2, 8), 4).tile_side(), 4u);
  EXPECT_EQ(TiledCurve(Universe(2, 8), 4).name(), "tiled-4");
}

TEST(TiledCurveDeath, RejectsNonDividingTile) {
  EXPECT_DEATH(TiledCurve(Universe(2, 8), 3), "");
}

}  // namespace
}  // namespace sfc
