// The paper's §IV-B remark: Z curves built with different dimension orders
// during interleaving "are all equivalent ... at least for the metrics that
// we consider".  These tests verify the construction and the equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sfc/core/all_pairs.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/zcurve.h"

namespace sfc {
namespace {

TEST(PermutedZCurve, IdentityOrderEqualsZCurve) {
  const Universe u = Universe::pow2(3, 2);
  const ZCurve z(u);
  const PermutedZCurve pz(u, {0, 1, 2});
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point cell = u.from_row_major(id);
    EXPECT_EQ(pz.index_of(cell), z.index_of(cell));
  }
}

TEST(PermutedZCurve, BijectiveForEveryOrder) {
  const Universe u = Universe::pow2(3, 2);
  std::vector<int> order = {0, 1, 2};
  do {
    const PermutedZCurve pz(u, order);
    std::vector<bool> seen(u.cell_count(), false);
    for (index_t id = 0; id < u.cell_count(); ++id) {
      const Point cell = u.from_row_major(id);
      const index_t key = pz.index_of(cell);
      ASSERT_LT(key, u.cell_count());
      ASSERT_FALSE(seen[key]);
      seen[key] = true;
      ASSERT_EQ(pz.point_at(key), cell);
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(PermutedZCurve, SwappedOrderPermutesCoordinateRoles) {
  // With order {1,0}, dimension 2 takes the most significant bit.
  const Universe u = Universe::pow2(2, 1);
  const PermutedZCurve pz(u, {1, 0});
  EXPECT_EQ(pz.index_of(Point{0, 0}), 0u);
  EXPECT_EQ(pz.index_of(Point{1, 0}), 1u);  // dim 1 now least significant
  EXPECT_EQ(pz.index_of(Point{0, 1}), 2u);
  EXPECT_EQ(pz.index_of(Point{1, 1}), 3u);
}

TEST(PermutedZCurve, AllOrdersShareDavgAndDmax) {
  // The paper's equivalence claim, verified exactly in 2 and 3 dimensions.
  for (int d : {2, 3}) {
    const Universe u = Universe::pow2(d, d == 2 ? 4 : 2);
    std::vector<int> order(static_cast<std::size_t>(d));
    for (int i = 0; i < d; ++i) order[static_cast<std::size_t>(i)] = i;
    double davg_reference = -1, dmax_reference = -1;
    do {
      const PermutedZCurve pz(u, order);
      const NNStretchResult r = compute_nn_stretch(pz);
      if (davg_reference < 0) {
        davg_reference = r.average_average;
        dmax_reference = r.average_maximum;
      } else {
        EXPECT_DOUBLE_EQ(r.average_average, davg_reference) << "d=" << d;
        EXPECT_DOUBLE_EQ(r.average_maximum, dmax_reference) << "d=" << d;
      }
    } while (std::next_permutation(order.begin(), order.end()));
  }
}

TEST(PermutedZCurve, AllOrdersShareAllPairsStretch) {
  const Universe u = Universe::pow2(2, 3);
  const PermutedZCurve a(u, {0, 1});
  const PermutedZCurve b(u, {1, 0});
  const AllPairsResult ra = compute_all_pairs_exact(a);
  const AllPairsResult rb = compute_all_pairs_exact(b);
  EXPECT_NEAR(ra.avg_stretch_manhattan, rb.avg_stretch_manhattan, 1e-12);
  EXPECT_NEAR(ra.avg_stretch_euclidean, rb.avg_stretch_euclidean, 1e-12);
}

TEST(PermutedZCurve, LambdaShiftsWithTheOrder) {
  // What is NOT invariant: the per-dimension decomposition.  Swapping the
  // interleave order swaps the Λ_i values.
  const Universe u = Universe::pow2(2, 3);
  const PermutedZCurve ab(u, {0, 1});
  const PermutedZCurve ba(u, {1, 0});
  const NNStretchResult rab = compute_nn_stretch(ab);
  const NNStretchResult rba = compute_nn_stretch(ba);
  EXPECT_TRUE(rab.lambda[0] == rba.lambda[1]);
  EXPECT_TRUE(rab.lambda[1] == rba.lambda[0]);
  EXPECT_FALSE(rab.lambda[0] == rab.lambda[1]);
}

TEST(PermutedZCurve, NameListsOrder) {
  const Universe u = Universe::pow2(2, 2);
  EXPECT_EQ(PermutedZCurve(u, {1, 0}).name(), "z-curve-order21");
}

TEST(PermutedZCurveDeath, RejectsBadOrders) {
  const Universe u = Universe::pow2(2, 2);
  EXPECT_DEATH(PermutedZCurve(u, {0, 0}), "");
  EXPECT_DEATH(PermutedZCurve(u, {0}), "");
  EXPECT_DEATH(PermutedZCurve(u, {0, 2}), "");
}

}  // namespace
}  // namespace sfc
