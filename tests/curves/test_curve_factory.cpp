#include "sfc/curves/curve_factory.h"

#include <gtest/gtest.h>

#include "sfc/curves/curve_error.h"

namespace sfc {
namespace {

TEST(CurveFactory, AllFamiliesConstructibleOnPow2) {
  const Universe u = Universe::pow2(2, 3);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 3);
    ASSERT_NE(curve, nullptr);
    EXPECT_EQ(curve->universe().cell_count(), 64u);
    // Sanity: encode/decode round trip at one arbitrary cell.
    const Point cell{3, 5};
    EXPECT_EQ(curve->point_at(curve->index_of(cell)), cell)
        << family_name(family);
  }
}

TEST(CurveFactory, NamesAreStable) {
  EXPECT_EQ(family_name(CurveFamily::kZ), "z-curve");
  EXPECT_EQ(family_name(CurveFamily::kSimple), "simple");
  EXPECT_EQ(family_name(CurveFamily::kSnake), "snake");
  EXPECT_EQ(family_name(CurveFamily::kGray), "gray");
  EXPECT_EQ(family_name(CurveFamily::kHilbert), "hilbert");
  EXPECT_EQ(family_name(CurveFamily::kRandom), "random");
}

TEST(CurveFactory, CurveNameMatchesFamilyName) {
  const Universe u = Universe::pow2(2, 2);
  for (CurveFamily family : analytic_curve_families()) {
    EXPECT_EQ(make_curve(family, u)->name(), family_name(family));
  }
}

TEST(CurveFactory, Pow2Requirements) {
  EXPECT_TRUE(family_requires_pow2(CurveFamily::kZ));
  EXPECT_TRUE(family_requires_pow2(CurveFamily::kGray));
  EXPECT_TRUE(family_requires_pow2(CurveFamily::kHilbert));
  EXPECT_FALSE(family_requires_pow2(CurveFamily::kSimple));
  EXPECT_FALSE(family_requires_pow2(CurveFamily::kSnake));
  EXPECT_FALSE(family_requires_pow2(CurveFamily::kRandom));
}

TEST(CurveFactory, NonPow2FamiliesWorkOnArbitrarySides) {
  const Universe u(2, 6);
  for (CurveFamily family : all_curve_families()) {
    if (family_requires_pow2(family)) continue;
    const CurvePtr curve = make_curve(family, u, 4);
    const Point cell{5, 2};
    EXPECT_EQ(curve->point_at(curve->index_of(cell)), cell)
        << family_name(family);
  }
}

TEST(CurveFactory, AllFamiliesListedOnce) {
  EXPECT_EQ(all_curve_families().size(), 6u);
  EXPECT_EQ(analytic_curve_families().size(), 5u);
}

TEST(CurveFactory, UnknownFamilyThrows) {
  const CurveFamily bogus = static_cast<CurveFamily>(999);
  EXPECT_THROW(family_name(bogus), CurveArgumentError);
  EXPECT_THROW(family_requires_pow2(bogus), CurveArgumentError);
  EXPECT_THROW(make_curve(bogus, Universe::pow2(2, 2)), CurveArgumentError);
}

// --- CurveDescriptor: the persisted curve identity (sfc/store) ------------

TEST(CurveDescriptor, ConstructsEveryFamilyAndMatchesName) {
  for (const std::string& family : descriptor_family_names()) {
    CurveDescriptor descriptor;
    descriptor.family = family;
    descriptor.dim = 2;
    descriptor.side = family == "peano" ? 9 : 8;
    descriptor.seed = 4;
    const CurvePtr curve = make_curve(descriptor);
    ASSERT_NE(curve, nullptr) << family;
    EXPECT_EQ(curve->universe().dim(), 2) << family;
    EXPECT_EQ(curve->universe().side(), descriptor.side) << family;
  }
}

TEST(CurveDescriptor, ToStringParseRoundTrip) {
  for (const std::string& family : descriptor_family_names()) {
    CurveDescriptor descriptor;
    descriptor.family = family;
    descriptor.dim = 3;
    descriptor.side = family == "peano" ? 27 : 16;
    descriptor.seed = 99;
    const CurveDescriptor parsed =
        CurveDescriptor::parse(descriptor.to_string());
    EXPECT_EQ(parsed.family, descriptor.family);
    EXPECT_EQ(parsed.dim, descriptor.dim);
    EXPECT_EQ(parsed.side, descriptor.side);
    EXPECT_EQ(parsed.seed, descriptor.seed);
    EXPECT_EQ(parsed, descriptor);
  }
}

TEST(CurveDescriptor, SeedOnlyDistinguishesRandomCurves) {
  CurveDescriptor a;
  a.family = "hilbert";
  a.side = 8;
  CurveDescriptor b = a;
  b.seed = a.seed + 1;
  EXPECT_EQ(a, b);  // seed is irrelevant for deterministic families
  a.family = b.family = "random";
  EXPECT_FALSE(a == b);
}

TEST(CurveDescriptor, SameDescriptorReconstructsSameBijection) {
  CurveDescriptor descriptor;
  descriptor.family = "random";
  descriptor.dim = 2;
  descriptor.side = 8;
  descriptor.seed = 12345;
  const CurvePtr a = make_curve(descriptor);
  const CurvePtr b = make_curve(descriptor);
  for (index_t key = 0; key < a->universe().cell_count(); ++key) {
    ASSERT_EQ(a->point_at(key), b->point_at(key)) << "key " << key;
  }
}

TEST(CurveDescriptor, RejectsBadDescriptorsWithoutAborting) {
  const auto reject = [](const std::string& family, int dim, coord_t side) {
    CurveDescriptor descriptor;
    descriptor.family = family;
    descriptor.dim = dim;
    descriptor.side = side;
    EXPECT_THROW(make_curve(descriptor), CurveArgumentError)
        << family << " d=" << dim << " side=" << side;
  };
  reject("nonsense", 2, 8);   // unknown family
  reject("hilbert", 2, 24);   // non-pow2 side
  reject("z", 2, 0);          // zero side
  reject("peano", 2, 8);      // non-pow3 side
  reject("spiral", 3, 8);     // 2-d only
  reject("diagonal", 1, 8);   // 2-d only
  reject("simple", 0, 8);     // bad dim
  reject("simple", 99, 8);    // dim over kMaxDim
  // 63-bit cell-count overflow must be a typed error, not an abort.
  reject("simple", 8, 4000000000u);
}

TEST(CurveDescriptor, ParseRejectsMalformedText) {
  EXPECT_THROW(CurveDescriptor::parse(""), CurveArgumentError);
  EXPECT_THROW(CurveDescriptor::parse("hilbert"), CurveArgumentError);
  EXPECT_THROW(CurveDescriptor::parse("hilbert d=2"), CurveArgumentError);
  EXPECT_THROW(CurveDescriptor::parse("hilbert d=x side=8 seed=1"),
               CurveArgumentError);
  EXPECT_THROW(CurveDescriptor::parse("hilbert side=8 d=2 seed=1"),
               CurveArgumentError);
}

}  // namespace
}  // namespace sfc
