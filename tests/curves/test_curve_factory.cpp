#include "sfc/curves/curve_factory.h"

#include <gtest/gtest.h>

#include "sfc/curves/curve_error.h"

namespace sfc {
namespace {

TEST(CurveFactory, AllFamiliesConstructibleOnPow2) {
  const Universe u = Universe::pow2(2, 3);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 3);
    ASSERT_NE(curve, nullptr);
    EXPECT_EQ(curve->universe().cell_count(), 64u);
    // Sanity: encode/decode round trip at one arbitrary cell.
    const Point cell{3, 5};
    EXPECT_EQ(curve->point_at(curve->index_of(cell)), cell)
        << family_name(family);
  }
}

TEST(CurveFactory, NamesAreStable) {
  EXPECT_EQ(family_name(CurveFamily::kZ), "z-curve");
  EXPECT_EQ(family_name(CurveFamily::kSimple), "simple");
  EXPECT_EQ(family_name(CurveFamily::kSnake), "snake");
  EXPECT_EQ(family_name(CurveFamily::kGray), "gray");
  EXPECT_EQ(family_name(CurveFamily::kHilbert), "hilbert");
  EXPECT_EQ(family_name(CurveFamily::kRandom), "random");
}

TEST(CurveFactory, CurveNameMatchesFamilyName) {
  const Universe u = Universe::pow2(2, 2);
  for (CurveFamily family : analytic_curve_families()) {
    EXPECT_EQ(make_curve(family, u)->name(), family_name(family));
  }
}

TEST(CurveFactory, Pow2Requirements) {
  EXPECT_TRUE(family_requires_pow2(CurveFamily::kZ));
  EXPECT_TRUE(family_requires_pow2(CurveFamily::kGray));
  EXPECT_TRUE(family_requires_pow2(CurveFamily::kHilbert));
  EXPECT_FALSE(family_requires_pow2(CurveFamily::kSimple));
  EXPECT_FALSE(family_requires_pow2(CurveFamily::kSnake));
  EXPECT_FALSE(family_requires_pow2(CurveFamily::kRandom));
}

TEST(CurveFactory, NonPow2FamiliesWorkOnArbitrarySides) {
  const Universe u(2, 6);
  for (CurveFamily family : all_curve_families()) {
    if (family_requires_pow2(family)) continue;
    const CurvePtr curve = make_curve(family, u, 4);
    const Point cell{5, 2};
    EXPECT_EQ(curve->point_at(curve->index_of(cell)), cell)
        << family_name(family);
  }
}

TEST(CurveFactory, AllFamiliesListedOnce) {
  EXPECT_EQ(all_curve_families().size(), 6u);
  EXPECT_EQ(analytic_curve_families().size(), 5u);
}

TEST(CurveFactory, UnknownFamilyThrows) {
  const CurveFamily bogus = static_cast<CurveFamily>(999);
  EXPECT_THROW(family_name(bogus), CurveArgumentError);
  EXPECT_THROW(family_requires_pow2(bogus), CurveArgumentError);
  EXPECT_THROW(make_curve(bogus, Universe::pow2(2, 2)), CurveArgumentError);
}

}  // namespace
}  // namespace sfc
