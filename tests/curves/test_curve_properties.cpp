// Parameterized property sweep over every curve family × dimension × level:
// bijectivity, round-trip, key range, and the generalized triangle
// inequality (Lemma 1) hold universally.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/rng/sampling.h"

namespace sfc {
namespace {

using PropertyParam = std::tuple<CurveFamily, int /*d*/, int /*k*/>;

class CurveProperty : public ::testing::TestWithParam<PropertyParam> {
 protected:
  CurvePtr make() const {
    const auto& [family, d, k] = GetParam();
    return make_curve(family, Universe::pow2(d, k), /*seed=*/1234);
  }
};

TEST_P(CurveProperty, BijectionOntoKeyRange) {
  const CurvePtr curve = make();
  const Universe& u = curve->universe();
  std::vector<bool> seen(u.cell_count(), false);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const index_t key = curve->index_of(u.from_row_major(id));
    ASSERT_LT(key, u.cell_count());
    ASSERT_FALSE(seen[key]) << "duplicate key " << key;
    seen[key] = true;
  }
}

TEST_P(CurveProperty, DecodeInvertsEncode) {
  const CurvePtr curve = make();
  const Universe& u = curve->universe();
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point p = u.from_row_major(id);
    ASSERT_EQ(curve->point_at(curve->index_of(p)), p);
  }
}

TEST_P(CurveProperty, EncodeInvertsDecode) {
  const CurvePtr curve = make();
  const Universe& u = curve->universe();
  for (index_t key = 0; key < u.cell_count(); ++key) {
    ASSERT_EQ(curve->index_of(curve->point_at(key)), key);
  }
}

TEST_P(CurveProperty, GeneralizedTriangleInequality) {
  // Lemma 1: ∆π(α1, αm) <= Σ ∆π(αi, αi+1) for any vertex chain.  Sampled
  // random chains.
  const CurvePtr curve = make();
  const Universe& u = curve->universe();
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int chain_length = 2 + static_cast<int>(rng.next_below(5));
    std::vector<Point> chain;
    for (int i = 0; i < chain_length; ++i) chain.push_back(random_cell(u, rng));
    index_t chain_sum = 0;
    for (int i = 0; i + 1 < chain_length; ++i) {
      chain_sum += curve->curve_distance(chain[static_cast<std::size_t>(i)],
                                         chain[static_cast<std::size_t>(i + 1)]);
    }
    ASSERT_LE(curve->curve_distance(chain.front(), chain.back()), chain_sum);
  }
}

TEST_P(CurveProperty, CurveDistanceIsSymmetricAndPositive) {
  const CurvePtr curve = make();
  const Universe& u = curve->universe();
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const auto [a, b] = random_distinct_pair(u, rng);
    const index_t ab = curve->curve_distance(a, b);
    ASSERT_EQ(ab, curve->curve_distance(b, a));
    ASSERT_GE(ab, 1u);
    ASSERT_EQ(curve->curve_distance(a, a), 0u);
  }
}

std::vector<PropertyParam> property_params() {
  std::vector<PropertyParam> params;
  for (CurveFamily family : all_curve_families()) {
    for (int d = 1; d <= 4; ++d) {
      for (int k = 1; k <= 3; ++k) {
        if (d * k > 12) continue;  // keep universes small (n <= 4096)
        params.emplace_back(family, d, k);
      }
    }
  }
  return params;
}

std::string property_param_name(
    const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string name = family_name(std::get<0>(info.param));
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name + "_d" + std::to_string(std::get<1>(info.param)) + "_k" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, CurveProperty,
                         ::testing::ValuesIn(property_params()),
                         property_param_name);

}  // namespace
}  // namespace sfc
