// Reader hardening for live serving: the advisory read lock rides the
// mapping, crash-safe writes rename over the path and never disturb live
// mappings (the never-truncate regression lock), column checksum mismatches
// are localizable after a degraded open, the seeded write-kill hook proves
// a writer death at *every* syscall leaves the path openable, and N forked
// processes mapping one file answer reference probes bit-identically.
#include <gtest/gtest.h>

#include <sys/file.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/index/point_index.h"
#include "sfc/index/range_scan.h"
#include "sfc/rng/sampling.h"
#include "sfc/store/index_store.h"

namespace sfc {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/sfc_hardening_" + name;
}

struct Dataset {
  CurveDescriptor descriptor;
  CurvePtr curve;
  std::vector<Point> points;
  PointIndex index;
};

Dataset make_dataset(std::uint64_t seed, int count = 600) {
  CurveDescriptor descriptor;
  descriptor.family = "hilbert";
  descriptor.dim = 2;
  descriptor.side = 64;
  CurvePtr curve = make_curve(descriptor);
  Xoshiro256 rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < count; ++i) {
    points.push_back(random_cell(curve->universe(), rng));
  }
  PointIndex index = PointIndex::build(*curve, points);
  return Dataset{descriptor, std::move(curve), std::move(points),
                 std::move(index)};
}

std::vector<std::uint32_t> scan_ids(const IndexColumnsView& view,
                                    const Box& box) {
  RangeScanEngine engine(view);
  std::vector<std::uint32_t> ids;
  engine.scan(box, &ids);
  return ids;
}

Box probe_box(int i) {
  const coord_t lo = static_cast<coord_t>((i * 7) % 48);
  return Box(Point{lo, lo}, Point{lo + 15, lo + 15});
}

TEST(StoreHardening, AdvisoryReadLockHeldWhileMapped) {
  const Dataset a = make_dataset(21);
  const std::string path = temp_path("read_lock");
  write_index_file(path, a.index, a.descriptor);

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  ASSERT_GE(fd, 0);
  {
    const MappedIndex mapped = MappedIndex::open(path);
    // A would-be in-place mutator taking the exclusive lock must see the
    // reader and fail...
    EXPECT_NE(::flock(fd, LOCK_EX | LOCK_NB), 0);
    EXPECT_EQ(errno, EWOULDBLOCK);
    // ...while other readers share the lock freely.
    EXPECT_EQ(::flock(fd, LOCK_SH | LOCK_NB), 0);
    EXPECT_EQ(::flock(fd, LOCK_UN), 0);
  }
  // The mapping's destructor releases the lock with its fd.
  EXPECT_EQ(::flock(fd, LOCK_EX | LOCK_NB), 0);
  ::close(fd);
}

TEST(StoreHardening, OpenRefusesExclusivelyLockedFile) {
  const Dataset a = make_dataset(22);
  const std::string path = temp_path("excl_lock");
  write_index_file(path, a.index, a.descriptor);

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::flock(fd, LOCK_EX | LOCK_NB), 0);
  EXPECT_THROW((void)MappedIndex::open(path), StoreIoError);
  // Opting out of locking (cooperating read-only tooling) still works.
  MappedIndexOptions no_lock;
  no_lock.lock = false;
  EXPECT_NO_THROW((void)MappedIndex::open(path, no_lock));
  ::close(fd);
}

TEST(StoreHardening, RenameOverLivePathKeepsOldMappingServing) {
  // The never-truncate regression lock: write_index_file over a live path
  // must rename a complete temp file into place, leaving the old inode (and
  // every mapping of it) untouched.  If the write path ever mutated the file
  // in place, the old mapping's answers would change or the process would
  // fault — this test pins the contract.
  const Dataset a = make_dataset(23);
  const Dataset b = make_dataset(24);
  const std::string path = temp_path("rename_over_live");
  write_index_file(path, a.index, a.descriptor);

  const MappedIndex live = MappedIndex::open(path);
  std::vector<std::vector<std::uint32_t>> before;
  for (int i = 0; i < 8; ++i) {
    before.push_back(scan_ids(live.view(), probe_box(i)));
  }

  // Replace the path while `live` still maps the old inode.
  write_index_file(path, b.index, b.descriptor);

  for (std::size_t i = 0; i < 8; ++i) {
    const Box probe = probe_box(static_cast<int>(i));
    EXPECT_EQ(scan_ids(live.view(), probe), before[i]) << "probe " << i;
    EXPECT_EQ(before[i], scan_ids(a.index.view(), probe));
  }
  // A fresh open serves the new dataset.
  const MappedIndex fresh = MappedIndex::open(path);
  bool differs = false;
  for (std::size_t i = 0; i < 8; ++i) {
    const Box probe = probe_box(static_cast<int>(i));
    const auto ids = scan_ids(fresh.view(), probe);
    EXPECT_EQ(ids, scan_ids(b.index.view(), probe));
    if (ids != before[i]) differs = true;
  }
  EXPECT_TRUE(differs);  // the swap was observable, so the probes are live
}

TEST(StoreHardening, VerifyColumnChecksumsLocalizesCorruption) {
  const Dataset a = make_dataset(25);
  const std::string path = temp_path("column_mask");
  write_index_file(path, a.index, a.descriptor);

  MappedIndexOptions lazy;
  lazy.verify = false;
  std::uint64_t points_offset = 0;
  {
    const MappedIndex clean = MappedIndex::open(path, lazy);
    EXPECT_EQ(clean.verify_column_checksums(), 0u);
    points_offset = clean.column_offset(2);
  }
  // Stomp one byte in the points column; only bit 2 may trip.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    file.seekg(static_cast<std::streamoff>(points_offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(points_offset));
    file.write(&byte, 1);
    ASSERT_TRUE(file.good());
  }
  const MappedIndex tampered = MappedIndex::open(path, lazy);
  EXPECT_EQ(tampered.verify_column_checksums(), 1u << 2);
}

TEST(StoreHardening, WriterKillAtEverySyscallLeavesPathOpenable) {
  // Crash coverage at every write-path syscall boundary: for each countdown
  // c, a forked child dies at exactly the c-th syscall of write_index_file.
  // After every crash the path must open fully verified and serve either the
  // old or the new dataset — never a torn hybrid.  The countdown sweep stops
  // once a child survives the whole write (countdown exceeded the write's
  // syscall count).
  const Dataset a = make_dataset(26);
  const Dataset b = make_dataset(27);
  const std::string path = temp_path("kill_sweep");
  write_index_file(path, a.index, a.descriptor);

  const auto ref_a = scan_ids(a.index.view(), probe_box(3));
  const auto ref_b = scan_ids(b.index.view(), probe_box(3));
  ASSERT_NE(ref_a, ref_b);  // the probe distinguishes the datasets

  int killed = 0;
  int survived = 0;
  for (int countdown = 0; countdown < 200 && survived == 0; ++countdown) {
    const ::pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      store_testing::write_kill_countdown.store(countdown);
      try {
        write_index_file(path, b.index, b.descriptor);
      } catch (...) {
        ::_exit(3);
      }
      ::_exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    const int code = WEXITSTATUS(status);
    ASSERT_TRUE(code == 0 || code == store_testing::kKillExitCode)
        << "countdown " << countdown << " exit " << code;
    if (code == store_testing::kKillExitCode) {
      ++killed;
    } else {
      ++survived;
    }
    MappedIndexOptions verify;
    verify.verify = true;
    const MappedIndex after = MappedIndex::open(path, verify);
    const auto ids = scan_ids(after.view(), probe_box(3));
    EXPECT_TRUE(ids == ref_a || ids == ref_b)
        << "torn content after kill at countdown " << countdown;
  }
  EXPECT_GT(killed, 5);     // the sweep actually crashed mid-write
  EXPECT_EQ(survived, 1);   // and ended with one complete write
  const MappedIndex final_map = MappedIndex::open(path);
  EXPECT_EQ(scan_ids(final_map.view(), probe_box(3)), ref_b);
}

TEST(StoreHardening, MultiProcessMappedServingIsBitIdentical) {
  // N processes map one file concurrently (shared advisory locks) and each
  // answers the reference probes; any deviation from the in-memory answers
  // is a child failure.  This is the cross-process half of the mmap serving
  // story — same inode, same bytes, same answers everywhere.
  const Dataset a = make_dataset(28);
  const std::string path = temp_path("multi_process");
  write_index_file(path, a.index, a.descriptor);

  std::vector<std::vector<std::uint32_t>> expected;
  for (int i = 0; i < 16; ++i) {
    expected.push_back(scan_ids(a.index.view(), probe_box(i)));
  }

  constexpr int kProcesses = 4;
  std::vector<::pid_t> children;
  for (int p = 0; p < kProcesses; ++p) {
    const ::pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      try {
        const MappedIndex mapped = MappedIndex::open(path);
        for (std::size_t i = 0; i < 16; ++i) {
          if (scan_ids(mapped.view(), probe_box(static_cast<int>(i))) !=
              expected[i]) {
            ::_exit(2);
          }
        }
      } catch (...) {
        ::_exit(3);
      }
      ::_exit(0);
    }
    children.push_back(pid);
  }
  for (const ::pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
}

}  // namespace
}  // namespace sfc
