// On-disk index format robustness and the core tentpole guarantee: queries
// through a mmap-opened file are bit-identical to queries through the
// in-memory index, for every curve family — both run through the same
// IndexColumnsView, and these tests pin that down end to end.
#include "sfc/store/index_store.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/index/executor.h"
#include "sfc/index/knn.h"
#include "sfc/index/range_scan.h"
#include "sfc/rng/sampling.h"

namespace sfc {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/sfc_store_" + name;
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// A written index file for tamper tests: hilbert d=2 side=64, 500 rows.
struct WrittenIndex {
  CurveDescriptor descriptor;
  CurvePtr curve;
  std::vector<Point> points;
  PointIndex index;
  std::string path;
};

WrittenIndex write_sample(const std::string& name) {
  CurveDescriptor descriptor;
  descriptor.family = "hilbert";
  descriptor.dim = 2;
  descriptor.side = 64;
  CurvePtr curve = make_curve(descriptor);
  Xoshiro256 rng(11);
  std::vector<Point> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back(random_cell(curve->universe(), rng));
  }
  PointIndex index = PointIndex::build(*curve, points);
  const std::string path = temp_path(name);
  write_index_file(path, index, descriptor);
  return WrittenIndex{descriptor, std::move(curve), std::move(points),
                      std::move(index), path};
}

// --- byte-level header layout, mirrored from index_store.cpp (v1) ---------
constexpr std::size_t kVersionOffset = 8;
constexpr std::size_t kCurveSideOffset = 28;
constexpr std::size_t kHeaderChecksumOffset = 176;
constexpr std::size_t kHeaderBytes = 184;

/// Recomputes the header checksum after a deliberate header edit, so tests
/// reach the validation step *behind* the checksum.
void fix_header_checksum(std::vector<char>& bytes) {
  ASSERT_GE(bytes.size(), kHeaderBytes);
  std::memset(bytes.data() + kHeaderChecksumOffset, 0, sizeof(std::uint64_t));
  const std::uint64_t digest = fnv1a64(bytes.data(), kHeaderBytes);
  std::memcpy(bytes.data() + kHeaderChecksumOffset, &digest,
              sizeof(std::uint64_t));
}

TEST(IndexStore, RoundTripPreservesColumnsExactly) {
  const WrittenIndex w = write_sample("roundtrip.sfcidx");
  const MappedIndex mapped = MappedIndex::open(w.path);

  EXPECT_EQ(mapped.descriptor(), w.descriptor);
  EXPECT_EQ(mapped.row_count(), w.index.row_count());
  EXPECT_EQ(mapped.block_rows(), w.index.block_rows());

  const IndexColumnsView& disk = mapped.view();
  const IndexColumnsView mem = w.index.view();
  ASSERT_EQ(disk.row_count(), mem.row_count());
  for (std::uint64_t r = 0; r < mem.row_count(); ++r) {
    ASSERT_EQ(disk.key_of_row(r), mem.key_of_row(r)) << "row " << r;
    ASSERT_EQ(disk.id_of_row(r), mem.id_of_row(r)) << "row " << r;
    ASSERT_EQ(disk.point_of_row(r), mem.point_of_row(r)) << "row " << r;
  }
  ASSERT_EQ(disk.block_count(), mem.block_count());
  for (std::uint64_t b = 0; b < mem.block_count(); ++b) {
    ASSERT_EQ(disk.block_last_key()[b], mem.block_last_key()[b]);
  }
}

TEST(IndexStore, EmptyIndexRoundTrips) {
  CurveDescriptor descriptor;
  descriptor.family = "z";
  descriptor.dim = 2;
  descriptor.side = 16;
  const CurvePtr curve = make_curve(descriptor);
  const PointIndex index = PointIndex::build(*curve, {});
  const std::string path = temp_path("empty.sfcidx");
  write_index_file(path, index, descriptor);
  const MappedIndex mapped = MappedIndex::open(path);
  EXPECT_EQ(mapped.row_count(), 0u);
  RangeScanEngine engine(mapped.view());
  std::vector<std::uint32_t> ids;
  engine.scan(Box(Point{2, 2}, Point{9, 9}), &ids);
  EXPECT_TRUE(ids.empty());
}

// The tentpole acceptance check: build -> write -> mmap -> query must be
// bit-identical to in-memory for every constructible family, range and kNN.
TEST(IndexStore, MappedQueriesBitIdenticalToInMemoryForEveryFamily) {
  for (const std::string& family : descriptor_family_names()) {
    CurveDescriptor descriptor;
    descriptor.family = family;
    descriptor.dim = 2;
    descriptor.side = family == "peano" ? 27 : 32;
    descriptor.seed = 5;
    const CurvePtr curve = make_curve(descriptor);
    const Universe& u = curve->universe();

    Xoshiro256 rng(23);
    std::vector<Point> points;
    for (int i = 0; i < 800; ++i) points.push_back(random_cell(u, rng));
    const PointIndex index = PointIndex::build(*curve, points);

    const std::string path = temp_path("family_" + family + ".sfcidx");
    write_index_file(path, index, descriptor);
    const MappedIndex mapped = MappedIndex::open(path);

    std::vector<Box> boxes;
    std::vector<Point> queries;
    for (int i = 0; i < 40; ++i) boxes.push_back(random_box(u, 5, rng));
    for (int i = 0; i < 40; ++i) queries.push_back(random_cell(u, rng));

    const auto mem_range = run_range_queries(index.view(), boxes);
    const auto disk_range = run_range_queries(mapped.view(), boxes);
    ASSERT_EQ(mem_range.size(), disk_range.size());
    for (std::size_t i = 0; i < mem_range.size(); ++i) {
      EXPECT_EQ(mem_range[i].ids, disk_range[i].ids)
          << family << " box " << i;
      EXPECT_EQ(mem_range[i].stats.rows_scanned,
                disk_range[i].stats.rows_scanned)
          << family << " box " << i;
    }

    const auto mem_knn = run_knn_queries(index.view(), queries, 7);
    const auto disk_knn = run_knn_queries(mapped.view(), queries, 7);
    ASSERT_EQ(mem_knn.size(), disk_knn.size());
    for (std::size_t i = 0; i < mem_knn.size(); ++i) {
      EXPECT_EQ(mem_knn[i].neighbors, disk_knn[i].neighbors)
          << family << " query " << i;
      EXPECT_EQ(mem_knn[i].stats.rows_scanned, disk_knn[i].stats.rows_scanned)
          << family << " query " << i;
    }
  }
}

TEST(IndexStore, WriteRejectsDescriptorUniverseMismatch) {
  CurveDescriptor descriptor;
  descriptor.family = "z";
  descriptor.dim = 2;
  descriptor.side = 16;
  const CurvePtr curve = make_curve(descriptor);
  const std::vector<Point> points{Point{1, 2}};
  const PointIndex index = PointIndex::build(*curve, points);
  CurveDescriptor wrong = descriptor;
  wrong.side = 32;
  EXPECT_THROW(
      write_index_file(temp_path("mismatch.sfcidx"), index, wrong),
      StoreError);
}

TEST(IndexStore, RejectsMissingFile) {
  EXPECT_THROW(MappedIndex::open(temp_path("never_written.sfcidx")),
               StoreError);
}

TEST(IndexStore, RejectsTruncatedFile) {
  const WrittenIndex w = write_sample("truncated.sfcidx");
  std::vector<char> bytes = read_bytes(w.path);
  // Cut inside the last column: the header survives, the column table does
  // not fit the file any more.
  const auto truncated_to = [&](std::size_t size) {
    return std::vector<char>(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(size));
  };
  write_bytes(w.path, truncated_to(bytes.size() - bytes.size() / 4));
  EXPECT_THROW(MappedIndex::open(w.path), StoreError);

  // Shorter than the header itself.
  write_bytes(w.path, truncated_to(kHeaderBytes / 2));
  EXPECT_THROW(MappedIndex::open(w.path), StoreError);
}

TEST(IndexStore, RejectsFlippedColumnByte) {
  const WrittenIndex w = write_sample("bitflip.sfcidx");
  std::vector<char> bytes = read_bytes(w.path);
  // Flip one byte in the middle of the column region (past the header).
  const std::size_t victim = kHeaderBytes + (bytes.size() - kHeaderBytes) / 2;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);
  write_bytes(w.path, bytes);
  EXPECT_THROW(MappedIndex::open(w.path), StoreError);

  // Header and bounds are still intact, so an explicit verify=false open is
  // allowed to skip the (expensive) content checks and succeed.
  MappedIndexOptions no_verify;
  no_verify.verify = false;
  EXPECT_NO_THROW(MappedIndex::open(w.path, no_verify));
}

TEST(IndexStore, RejectsWrongVersion) {
  const WrittenIndex w = write_sample("version.sfcidx");
  std::vector<char> bytes = read_bytes(w.path);
  const std::uint32_t bad_version = 99;
  std::memcpy(bytes.data() + kVersionOffset, &bad_version, sizeof(bad_version));
  fix_header_checksum(bytes);
  write_bytes(w.path, bytes);
  try {
    MappedIndex::open(w.path);
    FAIL() << "expected StoreError";
  } catch (const StoreError& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos)
        << error.what();
  }
}

TEST(IndexStore, RejectsWrongUniverseHeader) {
  const WrittenIndex w = write_sample("universe.sfcidx");
  std::vector<char> bytes = read_bytes(w.path);
  // side 64 -> 63: hilbert requires a power-of-two side, so the persisted
  // descriptor must be rejected (recoverably — no abort) at reconstruction.
  const std::uint32_t bad_side = 63;
  std::memcpy(bytes.data() + kCurveSideOffset, &bad_side, sizeof(bad_side));
  fix_header_checksum(bytes);
  write_bytes(w.path, bytes);
  EXPECT_THROW(MappedIndex::open(w.path), StoreError);
}

TEST(IndexStore, RejectsTamperedHeaderWithoutFixedChecksum) {
  const WrittenIndex w = write_sample("header_tamper.sfcidx");
  std::vector<char> bytes = read_bytes(w.path);
  const std::uint32_t bad_side = 128;
  std::memcpy(bytes.data() + kCurveSideOffset, &bad_side, sizeof(bad_side));
  write_bytes(w.path, bytes);  // checksum now stale
  try {
    MappedIndex::open(w.path);
    FAIL() << "expected StoreError";
  } catch (const StoreError& error) {
    EXPECT_NE(std::string(error.what()).find("header checksum"),
              std::string::npos)
        << error.what();
  }
}

TEST(IndexStore, RejectsBadMagic) {
  const WrittenIndex w = write_sample("magic.sfcidx");
  std::vector<char> bytes = read_bytes(w.path);
  bytes[0] = 'X';
  write_bytes(w.path, bytes);
  EXPECT_THROW(MappedIndex::open(w.path), StoreError);
}

TEST(IndexStore, RejectsOutOfUniverseKeyUnderVerify) {
  const WrittenIndex w = write_sample("badkey.sfcidx");
  std::vector<char> bytes = read_bytes(w.path);
  // Column 0 (keys) starts at the first 64-byte boundary after the header.
  const std::size_t keys_offset = 192;  // align_up(184, 64)
  const index_t huge = ~index_t{0} >> 1;
  std::memcpy(bytes.data() + keys_offset +
                  (w.index.row_count() - 1) * sizeof(index_t),
              &huge, sizeof(huge));
  // Also fix that column's checksum so the key-range check is what fires.
  const std::uint64_t digest =
      fnv1a64(bytes.data() + keys_offset,
              w.index.row_count() * sizeof(index_t));
  const std::size_t keys_checksum_offset = 80 + 16;  // columns[0].checksum
  std::memcpy(bytes.data() + keys_checksum_offset, &digest, sizeof(digest));
  fix_header_checksum(bytes);
  write_bytes(w.path, bytes);
  try {
    MappedIndex::open(w.path);
    FAIL() << "expected StoreError";
  } catch (const StoreError& error) {
    EXPECT_NE(std::string(error.what()).find("universe"), std::string::npos)
        << error.what();
  }
}

TEST(IndexStore, MoveTransfersTheMapping) {
  const WrittenIndex w = write_sample("move.sfcidx");
  MappedIndex a = MappedIndex::open(w.path);
  const std::uint64_t rows = a.row_count();
  MappedIndex b = std::move(a);
  EXPECT_EQ(b.row_count(), rows);
  KnnEngine engine(b.view());
  EXPECT_EQ(engine.query(Point{3, 3}, 3).size(), 3u);
}

TEST(IndexStore, Fnv1a64MatchesReferenceVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
}

// --- crash safety of the write path ---------------------------------------

TEST(IndexStore, RejectsZeroLengthFile) {
  const std::string path = temp_path("zero.sfcidx");
  write_bytes(path, {});
  EXPECT_THROW(MappedIndex::open(path), StoreError);
}

TEST(IndexStore, RejectsFileShorterThanHeader) {
  const WrittenIndex w = write_sample("shortheader.sfcidx");
  std::vector<char> bytes = read_bytes(w.path);
  bytes.resize(kHeaderBytes / 2);
  write_bytes(w.path, bytes);
  EXPECT_THROW(MappedIndex::open(w.path), StoreError);
}

TEST(IndexStore, RejectsTornTmpLeftover) {
  // A crash mid-write leaves `path.tmp` holding a prefix of the file.  The
  // durable `path` is untouched, and the torn temp itself must be rejected
  // at every truncation point if someone opens it anyway.
  const WrittenIndex w = write_sample("torn.sfcidx");
  const std::vector<char> bytes = read_bytes(w.path);
  const std::string tmp = w.path + ".tmp";
  for (const double fraction : {0.0, 0.3, 0.7, 0.999}) {
    std::vector<char> torn(
        bytes.begin(),
        bytes.begin() + static_cast<std::ptrdiff_t>(
                            fraction * static_cast<double>(bytes.size())));
    write_bytes(tmp, torn);
    EXPECT_THROW(MappedIndex::open(tmp), StoreError) << "fraction " << fraction;
  }
  // The real file still opens: the crash never touched it.
  EXPECT_EQ(MappedIndex::open(w.path).row_count(), 500u);
}

TEST(IndexStore, WriteFailureIsTypedAndLeavesNoTemp) {
  const WrittenIndex w = write_sample("typedio.sfcidx");
  const std::string bad = temp_path("no-such-dir") + "/nested/out.sfcidx";
  try {
    write_index_file(bad, w.index, w.descriptor);
    FAIL() << "expected StoreIoError";
  } catch (const StoreIoError& error) {
    EXPECT_EQ(error.sys_call(), "open");
    EXPECT_EQ(error.errno_value(), ENOENT);
    EXPECT_NE(std::string(error.what()).find("open"), std::string::npos);
  }
  // No stray temp file anywhere near the target.
  std::ifstream tmp(bad + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
}

TEST(IndexStore, OverwriteIsAtomic) {
  // Writing over an existing index replaces it wholesale (rename), so the
  // new content fully supersedes the old even when sizes differ.
  const WrittenIndex w = write_sample("overwrite.sfcidx");
  CurveDescriptor descriptor;
  descriptor.family = "z";
  descriptor.dim = 2;
  descriptor.side = 32;
  const CurvePtr curve = make_curve(descriptor);
  Xoshiro256 rng(5);
  std::vector<Point> points;
  for (int i = 0; i < 77; ++i) {
    points.push_back(random_cell(curve->universe(), rng));
  }
  const PointIndex small = PointIndex::build(*curve, points);
  write_index_file(w.path, small, descriptor);

  const MappedIndex mapped = MappedIndex::open(w.path);
  EXPECT_EQ(mapped.row_count(), 77u);
  EXPECT_EQ(mapped.descriptor(), descriptor);
  // No temp residue after a successful write either.
  std::ifstream tmp(w.path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
}

TEST(IndexStore, RejectsSwappedCurveFamilyWithFixedChecksum) {
  // The silent-wrong-answer attack: rewrite the persisted family
  // ("hilbert" -> "z"), dutifully recompute the header checksum, leave all
  // data intact.  Every structural check passes; only the key<->point
  // re-encoding pass can notice, because z and hilbert order the same cells
  // differently.
  const WrittenIndex w = write_sample("famswap.sfcidx");
  std::vector<char> bytes = read_bytes(w.path);
  constexpr std::size_t kFamilyOffset = 56;
  constexpr std::size_t kFamilyBytes = 24;
  std::memset(bytes.data() + kFamilyOffset, 0, kFamilyBytes);
  std::memcpy(bytes.data() + kFamilyOffset, "z", 1);
  fix_header_checksum(bytes);
  write_bytes(w.path, bytes);
  try {
    MappedIndex::open(w.path);
    FAIL() << "expected StoreError";
  } catch (const StoreError& error) {
    EXPECT_NE(std::string(error.what()).find("re-encode"), std::string::npos)
        << error.what();
  }
  // With verification off the swap is NOT caught — which is exactly why
  // verify defaults to on and serving only disables it for files it has
  // already validated.
  EXPECT_NO_THROW(MappedIndex::open(w.path, {.verify = false}));
}

TEST(IndexStore, RejectsTamperedPointWithFixedColumnChecksum) {
  // Stomp one stored point coordinate and fix up the points-column checksum:
  // structural validation passes, the key<->point pass must object.
  const WrittenIndex w = write_sample("pointswap.sfcidx");
  std::vector<char> bytes = read_bytes(w.path);
  constexpr std::size_t kColumnTableOffset = 80;
  constexpr std::size_t kColumnEntryBytes = 24;
  const std::size_t points_entry = kColumnTableOffset + 2 * kColumnEntryBytes;
  std::uint64_t points_offset = 0, points_bytes = 0;
  std::memcpy(&points_offset, bytes.data() + points_entry, 8);
  std::memcpy(&points_bytes, bytes.data() + points_entry + 8, 8);
  ASSERT_GT(points_bytes, 0u);
  // Flip the low bit of the first coordinate of row 0's point.
  bytes[points_offset] = static_cast<char>(bytes[points_offset] ^ 1);
  const std::uint64_t digest =
      fnv1a64(bytes.data() + points_offset, points_bytes);
  std::memcpy(bytes.data() + points_entry + 16, &digest, 8);
  fix_header_checksum(bytes);
  write_bytes(w.path, bytes);
  try {
    MappedIndex::open(w.path);
    FAIL() << "expected StoreError";
  } catch (const StoreError& error) {
    EXPECT_NE(std::string(error.what()).find("re-encode"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace sfc
