// The corruption contract, enforced exhaustively at small scale: every
// single-bit flip and every truncation point of a valid index file is either
// rejected with a typed StoreError or provably benign (opens AND answers the
// probe set bit-identically) — never a crash, never a silently wrong answer.
// The seeded campaign then samples the same space the CI fuzz job samples at
// 1M-point scale, and its determinism across thread counts is pinned down.
#include "sfc/store/fault_inject.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/index/point_index.h"
#include "sfc/rng/sampling.h"

namespace sfc {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/sfc_fuzz_" + name;
}

std::string write_sample(const std::string& name, const std::string& family,
                         int rows) {
  CurveDescriptor descriptor;
  descriptor.family = family;
  descriptor.dim = 2;
  descriptor.side = 64;
  const CurvePtr curve = make_curve(descriptor);
  Xoshiro256 rng(23);
  std::vector<Point> points;
  for (int i = 0; i < rows; ++i) {
    points.push_back(random_cell(curve->universe(), rng));
  }
  const PointIndex index = PointIndex::build(*curve, points);
  const std::string path = temp_path(name);
  write_index_file(path, index, descriptor);
  return path;
}

std::shared_ptr<const std::vector<std::uint8_t>> load_bytes(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  auto bytes = std::make_shared<std::vector<std::uint8_t>>(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return bytes;
}

TEST(FaultInject, EveryBitFlipRejectedOrBenign) {
  // Exhaustive: flip every bit of a small but real index file (header,
  // all four columns, padding) and demand the contract for each.
  const std::string path = write_sample("bits.sfcidx", "hilbert", 60);
  const auto pristine = load_bytes(path);
  FaultHarness harness(pristine, temp_path("bits.scratch"), 4, 99);
  std::uint64_t rejected = 0, benign = 0;
  for (std::uint64_t offset = 0; offset < pristine->size(); ++offset) {
    for (std::uint8_t bit = 0; bit < 8; ++bit) {
      FaultMutation m;
      m.kind = FaultKind::kBitFlip;
      m.offset = offset;
      m.bit = bit;
      const FaultOutcome outcome = harness.check(m);
      ASSERT_TRUE(outcome == FaultOutcome::kRejected ||
                  outcome == FaultOutcome::kBenign)
          << m.describe() << " -> " << fault_outcome_name(outcome);
      (outcome == FaultOutcome::kRejected ? rejected : benign) += 1;
    }
  }
  // The vast majority of bits are load-bearing; padding accounts for the
  // benign remainder.
  EXPECT_GT(rejected, benign);
  EXPECT_GT(rejected, 8 * 184u);  // at least every header bit rejects
}

TEST(FaultInject, EveryTruncationRejected) {
  const std::string path = write_sample("trunc.sfcidx", "z", 50);
  const auto pristine = load_bytes(path);
  FaultHarness harness(pristine, temp_path("trunc.scratch"), 4, 99);
  for (std::uint64_t to = 0; to < pristine->size(); ++to) {
    FaultMutation m;
    m.kind = FaultKind::kTruncate;
    m.truncate_to = to;
    ASSERT_EQ(harness.check(m), FaultOutcome::kRejected)
        << "truncation to " << to << " of " << pristine->size()
        << " bytes was not rejected";
  }
}

TEST(FaultInject, EveryTruncateWhileMappedRejectedOrBenign) {
  // The zero-extended-tail image a live mapping sees when the file under it
  // is truncated and regrown: every cut point must reject or be provably
  // benign (a cut inside trailing padding regrows to identical bytes).
  const std::string path = write_sample("zerotail.sfcidx", "hilbert", 50);
  const auto pristine = load_bytes(path);
  FaultHarness harness(pristine, temp_path("zerotail.scratch"), 4, 99);
  std::uint64_t rejected = 0;
  for (std::uint64_t to = 0; to < pristine->size(); ++to) {
    FaultMutation m;
    m.kind = FaultKind::kTruncateWhileMapped;
    m.truncate_to = to;
    const FaultOutcome outcome = harness.check(m);
    ASSERT_TRUE(outcome == FaultOutcome::kRejected ||
                outcome == FaultOutcome::kBenign)
        << m.describe() << " -> " << fault_outcome_name(outcome);
    rejected += outcome == FaultOutcome::kRejected;
  }
  // Any cut before the end of the last column's payload zeroes real data.
  EXPECT_GT(rejected, 0u);
}

TEST(FaultInject, HeaderFieldStompsWithFixedChecksumNeverServeWrongAnswers) {
  // Stomp every pre-checksum header byte with several adversarial values,
  // recomputing the checksum each time — this reaches the semantic
  // validators (curve reconstruction, bounds, key<->point agreement), the
  // layer where a wrong answer could otherwise slip through.
  const std::string path = write_sample("hdr.sfcidx", "hilbert", 60);
  const auto pristine = load_bytes(path);
  FaultHarness harness(pristine, temp_path("hdr.scratch"), 4, 99);
  for (std::uint64_t offset = 0; offset < 176; ++offset) {
    for (const std::uint8_t value :
         {std::uint8_t{0x00}, std::uint8_t{0x01}, std::uint8_t{0x7f},
          std::uint8_t{0xff}}) {
      if ((*pristine)[offset] == value) continue;  // not a mutation
      FaultMutation m;
      m.kind = FaultKind::kHeaderField;
      m.offset = offset;
      m.value = value;
      const FaultOutcome outcome = harness.check(m);
      ASSERT_TRUE(outcome == FaultOutcome::kRejected ||
                  outcome == FaultOutcome::kBenign)
          << m.describe() << " -> " << fault_outcome_name(outcome);
    }
  }
}

TEST(FaultInject, CampaignIsCleanAndDeterministicAcrossThreadCounts) {
  const std::string path = write_sample("campaign.sfcidx", "gray", 200);
  FaultCampaignOptions options;
  options.iterations = 300;
  options.seed = 42;
  options.probes = 4;
  options.threads = 1;
  const FaultCampaignReport one = run_fault_campaign(path, options);
  options.threads = 4;
  const FaultCampaignReport four = run_fault_campaign(path, options);

  EXPECT_TRUE(one.clean());
  EXPECT_TRUE(four.clean());
  EXPECT_EQ(one.iterations, 300u);
  EXPECT_EQ(one.rejected + one.benign, 300u);
  EXPECT_EQ(one.rejected, four.rejected);
  EXPECT_EQ(one.benign, four.benign);
  EXPECT_EQ(one.by_kind, four.by_kind);
  // Every kind was actually drawn in 300 iterations.
  for (const std::uint64_t drawn : one.by_kind) EXPECT_GT(drawn, 0u);
}

TEST(FaultInject, DrawCoversEveryKindAndStaysInBounds) {
  Xoshiro256 rng(7);
  std::array<std::uint64_t, 5> seen{};
  for (int i = 0; i < 2000; ++i) {
    const FaultMutation m = draw_fault_mutation(rng, 1000);
    ++seen[static_cast<std::size_t>(m.kind)];
    switch (m.kind) {
      case FaultKind::kBitFlip:
        EXPECT_LT(m.offset, 1000u);
        EXPECT_LT(m.bit, 8);
        break;
      case FaultKind::kByteStomp:
        EXPECT_LT(m.offset, 1000u);
        break;
      case FaultKind::kTruncate:
      case FaultKind::kTruncateWhileMapped:
        EXPECT_LT(m.truncate_to, 1000u);
        break;
      case FaultKind::kHeaderField:
        EXPECT_LT(m.offset, 176u);
        break;
      default:
        FAIL();
    }
  }
  for (const std::uint64_t count : seen) EXPECT_GT(count, 0u);
}

TEST(FaultInject, CampaignRejectsInvalidInputFile) {
  const std::string path = temp_path("garbage.sfcidx");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "not an index";
  out.close();
  FaultCampaignOptions options;
  options.iterations = 10;
  EXPECT_THROW(run_fault_campaign(path, options), StoreError);
}

}  // namespace
}  // namespace sfc
