// The multi-query executor must be a pure function of (index, queries):
// results and statistics bit-identical across 1/2/8 threads and any grain,
// and identical to driving one engine serially.
#include "sfc/index/executor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/parallel/thread_pool.h"
#include "sfc/rng/sampling.h"

namespace sfc {
namespace {

struct Workload {
  CurvePtr curve;
  std::vector<Point> points;
  std::vector<Box> boxes;
  std::vector<Point> queries;
};

Workload make_workload(CurveFamily family, std::uint64_t seed) {
  Workload w;
  const Universe u = Universe::pow2(2, 6);
  w.curve = make_curve(family, u, 7);
  Xoshiro256 rng(seed);
  for (int i = 0; i < 2000; ++i) w.points.push_back(random_cell(u, rng));
  for (int i = 0; i < 100; ++i) w.boxes.push_back(random_box(u, 9, rng));
  for (int i = 0; i < 100; ++i) w.queries.push_back(random_cell(u, rng));
  return w;
}

void expect_same_range_results(const std::vector<RangeQueryResult>& a,
                               const std::vector<RangeQueryResult>& b,
                               const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ids, b[i].ids) << label << " query " << i;
    EXPECT_EQ(a[i].stats.rows_returned, b[i].stats.rows_returned) << label;
    EXPECT_EQ(a[i].stats.rows_scanned, b[i].stats.rows_scanned) << label;
    EXPECT_EQ(a[i].stats.runs_in_cover, b[i].stats.runs_in_cover) << label;
    EXPECT_EQ(a[i].stats.runs_touched, b[i].stats.runs_touched) << label;
    EXPECT_EQ(a[i].stats.nodes_visited, b[i].stats.nodes_visited) << label;
  }
}

void expect_same_knn_results(const std::vector<KnnQueryResult>& a,
                             const std::vector<KnnQueryResult>& b,
                             const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].neighbors, b[i].neighbors) << label << " query " << i;
    EXPECT_EQ(a[i].stats.nodes_expanded, b[i].stats.nodes_expanded) << label;
    EXPECT_EQ(a[i].stats.frontier_pushes, b[i].stats.frontier_pushes) << label;
    EXPECT_EQ(a[i].stats.rows_scanned, b[i].stats.rows_scanned) << label;
    EXPECT_EQ(a[i].stats.certified, b[i].stats.certified) << label;
  }
}

TEST(IndexExecutor, RangeQueriesDeterministicAcrossThreadsAndGrains) {
  for (CurveFamily family : {CurveFamily::kHilbert, CurveFamily::kZ,
                             CurveFamily::kSnake}) {
    const Workload w = make_workload(family, 42);
    const PointIndex index = PointIndex::build(*w.curve, w.points);

    // Serial reference: one engine, one thread of execution.
    std::vector<RangeQueryResult> serial(w.boxes.size());
    RangeScanEngine engine(index);
    for (std::size_t i = 0; i < w.boxes.size(); ++i) {
      engine.scan(w.boxes[i], &serial[i].ids, &serial[i].stats);
    }

    ThreadPool pool1(1);
    ThreadPool pool2(2);
    ThreadPool pool8(8);
    for (ThreadPool* pool : {&pool1, &pool2, &pool8}) {
      for (std::uint64_t grain : {std::uint64_t{1}, std::uint64_t{7},
                                  std::uint64_t{1000}}) {
        MultiQueryOptions options;
        options.pool = pool;
        options.grain = grain;
        expect_same_range_results(
            run_range_queries(index, w.boxes, options), serial,
            family_name(family) + " threads=" +
                std::to_string(pool->thread_count()) + " grain=" +
                std::to_string(grain));
      }
    }
  }
}

TEST(IndexExecutor, KnnQueriesDeterministicAcrossThreadsAndGrains) {
  for (CurveFamily family : {CurveFamily::kHilbert, CurveFamily::kGray}) {
    const Workload w = make_workload(family, 43);
    const PointIndex index = PointIndex::build(*w.curve, w.points);

    std::vector<KnnQueryResult> serial(w.queries.size());
    KnnEngine engine(index);
    for (std::size_t i = 0; i < w.queries.size(); ++i) {
      serial[i].neighbors = engine.query(w.queries[i], 7, &serial[i].stats);
    }

    ThreadPool pool1(1);
    ThreadPool pool2(2);
    ThreadPool pool8(8);
    for (ThreadPool* pool : {&pool1, &pool2, &pool8}) {
      for (std::uint64_t grain : {std::uint64_t{1}, std::uint64_t{13},
                                  std::uint64_t{1000}}) {
        MultiQueryOptions options;
        options.pool = pool;
        options.grain = grain;
        expect_same_knn_results(
            run_knn_queries(index, w.queries, 7, options), serial,
            family_name(family) + " threads=" +
                std::to_string(pool->thread_count()) + " grain=" +
                std::to_string(grain));
      }
    }
  }
}

TEST(IndexExecutor, EmptyBatches) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const PointIndex index = PointIndex::build(*h, std::vector<Point>{Point{1, 2}});
  EXPECT_TRUE(run_range_queries(index, {}).empty());
  EXPECT_TRUE(run_knn_queries(index, {}, 3).empty());
}

}  // namespace
}  // namespace sfc
