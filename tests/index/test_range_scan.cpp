// Index-backed range scans against brute force, for every curve family in
// 1D/2D/3D (plus 4D Hilbert and triadic Peano), on uniform, duplicate-heavy,
// and degenerate datasets.  The cover path must return bit-identical id
// sequences to the full-scan reference and never overscan a row.
#include "sfc/index/range_scan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/curves/diagonal_curve.h"
#include "sfc/curves/peano_curve.h"
#include "sfc/curves/spiral_curve.h"
#include "sfc/grid/box.h"
#include "sfc/rng/sampling.h"

namespace sfc {
namespace {

std::vector<Point> random_points(const Universe& u, std::size_t count,
                                 std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) points.push_back(random_cell(u, rng));
  return points;
}

Box random_general_box(const Universe& u, Xoshiro256& rng) {
  Point lo = Point::zero(u.dim());
  Point hi = Point::zero(u.dim());
  for (int i = 0; i < u.dim(); ++i) {
    const coord_t a = static_cast<coord_t>(rng.next_below(u.side()));
    const coord_t b = static_cast<coord_t>(rng.next_below(u.side()));
    lo[i] = std::min(a, b);
    hi[i] = std::max(a, b);
  }
  return Box(lo, hi);
}

/// Brute force over the *input*: ids of in-box points, ordered by
/// (curve key, input position) — the index's row order.
std::vector<std::uint32_t> brute_force_ids(const SpaceFillingCurve& curve,
                                           const std::vector<Point>& points,
                                           const Box& box) {
  std::vector<std::pair<index_t, std::uint32_t>> hits;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (box.contains(points[i])) {
      hits.emplace_back(curve.index_of(points[i]),
                        static_cast<std::uint32_t>(i));
    }
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::uint32_t> ids;
  ids.reserve(hits.size());
  for (const auto& [key, id] : hits) ids.push_back(id);
  return ids;
}

void expect_scan_exact(const SpaceFillingCurve& curve,
                       const std::vector<Point>& points, std::uint64_t seed,
                       int boxes) {
  const PointIndex index = PointIndex::build(curve, points);
  RangeScanEngine engine(index);
  const Universe& u = curve.universe();
  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> ids;
  RangeScanStats stats;
  for (int i = 0; i < boxes + 2; ++i) {
    // Two degenerate boxes first: the full universe and a single cell.
    Box box = Box::full(u);
    if (i == 1) {
      const Point cell = random_cell(u, rng);
      box = Box(cell, cell);
    } else if (i >= 2) {
      box = random_general_box(u, rng);
    }
    const std::string label =
        curve.name() + " d=" + std::to_string(u.dim()) + " box " +
        box.lo().to_string() + ".." + box.hi().to_string();
    engine.scan(box, &ids, &stats);
    const std::vector<std::uint32_t> expected =
        brute_force_ids(curve, points, box);
    ASSERT_EQ(ids, expected) << label;
    // Full-scan reference path agrees and the cover path never overscans.
    RangeScanStats full_stats;
    EXPECT_EQ(range_scan_full(index, box, &full_stats), expected) << label;
    EXPECT_EQ(full_stats.rows_scanned, index.row_count()) << label;
    EXPECT_EQ(stats.rows_returned, expected.size()) << label;
    EXPECT_EQ(stats.rows_scanned, stats.rows_returned) << label;
    EXPECT_LE(stats.runs_touched, stats.runs_in_cover) << label;
    EXPECT_EQ(stats.used_subtree, curve.has_subtree_traversal()) << label;
  }
}

TEST(IndexRangeScan, FactoryFamilies1D) {
  const Universe u = Universe::pow2(1, 8);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 7);
    expect_scan_exact(*curve, random_points(u, 300, 11), 101, 12);
  }
}

TEST(IndexRangeScan, FactoryFamilies2D) {
  const Universe u = Universe::pow2(2, 5);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 7);
    expect_scan_exact(*curve, random_points(u, 400, 12), 102, 12);
  }
}

TEST(IndexRangeScan, FactoryFamilies3D) {
  const Universe u = Universe::pow2(3, 3);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 7);
    expect_scan_exact(*curve, random_points(u, 400, 13), 103, 10);
  }
}

TEST(IndexRangeScan, Hilbert4D) {
  const Universe u = Universe::pow2(4, 2);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  expect_scan_exact(*h, random_points(u, 300, 14), 104, 10);
}

TEST(IndexRangeScan, PeanoTriadic) {
  const PeanoCurve peano(Universe(2, 27));
  expect_scan_exact(peano, random_points(peano.universe(), 400, 15), 105, 10);
}

TEST(IndexRangeScan, NonHierarchical2DCurves) {
  // Spiral and diagonal run the enumeration-fallback cover — still exact.
  const Universe u(2, 12);
  const SpiralCurve spiral(u);
  const DiagonalCurve diagonal(u);
  for (const SpaceFillingCurve* curve :
       {static_cast<const SpaceFillingCurve*>(&spiral),
        static_cast<const SpaceFillingCurve*>(&diagonal)}) {
    expect_scan_exact(*curve, random_points(u, 300, 16), 106, 8);
  }
}

TEST(IndexRangeScan, DuplicateHeavyDataset) {
  const Universe u = Universe::pow2(2, 5);
  Xoshiro256 rng(6);
  std::vector<Point> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back(Point{static_cast<coord_t>(rng.next_below(4)),
                           static_cast<coord_t>(rng.next_below(4))});
  }
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  expect_scan_exact(*h, points, 107, 10);
}

TEST(IndexRangeScan, DegenerateDatasets) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  expect_scan_exact(*h, {}, 108, 6);
  expect_scan_exact(*h, {Point{5, 11}}, 109, 6);
  expect_scan_exact(*h, std::vector<Point>(64, Point{9, 2}), 110, 6);
}

}  // namespace
}  // namespace sfc
