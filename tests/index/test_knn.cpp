// Certified best-first kNN against brute force, for every curve family in
// 1D/2D/3D (plus 4D Hilbert and triadic Peano): results must be
// bit-identical to the reference ranking — (squared distance, key, row)
// ascending, duplicates included — and every query must terminate certified.
#include "sfc/index/knn.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "sfc/apps/nn_query.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/peano_curve.h"
#include "sfc/curves/spiral_curve.h"
#include "sfc/grid/box.h"
#include "sfc/rng/sampling.h"

namespace sfc {
namespace {

std::vector<Point> random_points(const Universe& u, std::size_t count,
                                 std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) points.push_back(random_cell(u, rng));
  return points;
}

/// Reference ranking over the input multiset: every point becomes a
/// candidate (sq_dist, key, input position); the first k under the total
/// order are the expected neighbors.  Input position == row tie order
/// because the index build is stable.
std::vector<KnnNeighbor> brute_force_knn(const SpaceFillingCurve& curve,
                                         const std::vector<Point>& points,
                                         const Point& query, std::uint32_t k) {
  std::vector<KnnNeighbor> all;
  all.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    all.push_back(KnnNeighbor{static_cast<std::uint32_t>(i),
                              curve.index_of(points[i]),
                              squared_euclidean_distance(query, points[i])});
  }
  std::sort(all.begin(), all.end(),
            [](const KnnNeighbor& a, const KnnNeighbor& b) {
              return std::tie(a.sq_dist, a.key, a.id) <
                     std::tie(b.sq_dist, b.key, b.id);
            });
  if (all.size() > k) all.resize(k);
  return all;
}

void expect_knn_exact(const SpaceFillingCurve& curve,
                      const std::vector<Point>& points, std::uint64_t seed,
                      int queries) {
  const PointIndex index = PointIndex::build(curve, points);
  KnnEngine engine(index);
  const Universe& u = curve.universe();
  Xoshiro256 rng(seed);
  for (int i = 0; i < queries; ++i) {
    const Point query = random_cell(u, rng);
    for (const std::uint32_t k :
         {std::uint32_t{1}, std::uint32_t{3},
          static_cast<std::uint32_t>(points.size()),
          static_cast<std::uint32_t>(points.size()) + 5}) {
      if (k == 0) continue;
      const std::string label = curve.name() + " d=" +
                                std::to_string(u.dim()) + " query " +
                                query.to_string() + " k=" + std::to_string(k);
      KnnStats stats;
      const std::vector<KnnNeighbor> found = engine.query(query, k, &stats);
      EXPECT_EQ(found, brute_force_knn(curve, points, query, k)) << label;
      EXPECT_TRUE(stats.certified) << label;
      EXPECT_EQ(stats.used_subtree, curve.has_subtree_traversal()) << label;
      // The certificate itself: the k-th found distance cannot exceed the
      // min distance of any unpopped frontier node.
      if (stats.frontier_bound_valid && !found.empty()) {
        EXPECT_LE(found.back().sq_dist, stats.frontier_sq_dist) << label;
      }
      // Leaves cover disjoint key ranges, so no row is scanned twice.
      EXPECT_LE(stats.rows_scanned, index.row_count()) << label;
    }
  }
}

TEST(IndexKnn, FactoryFamilies1D) {
  const Universe u = Universe::pow2(1, 8);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 7);
    expect_knn_exact(*curve, random_points(u, 200, 21), 201, 6);
  }
}

TEST(IndexKnn, FactoryFamilies2D) {
  const Universe u = Universe::pow2(2, 5);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 7);
    expect_knn_exact(*curve, random_points(u, 300, 22), 202, 6);
  }
}

TEST(IndexKnn, FactoryFamilies3D) {
  const Universe u = Universe::pow2(3, 3);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 7);
    expect_knn_exact(*curve, random_points(u, 300, 23), 203, 5);
  }
}

TEST(IndexKnn, Hilbert4D) {
  const Universe u = Universe::pow2(4, 2);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  expect_knn_exact(*h, random_points(u, 200, 24), 204, 6);
}

TEST(IndexKnn, PeanoTriadic) {
  const PeanoCurve peano(Universe(2, 27));
  expect_knn_exact(peano, random_points(peano.universe(), 300, 25), 205, 5);
}

TEST(IndexKnn, NonHierarchicalFallback) {
  const Universe u(2, 12);
  const SpiralCurve spiral(u);
  const PointIndex index = PointIndex::build(spiral, random_points(u, 200, 26));
  KnnEngine engine(index);
  KnnStats stats;
  const auto found = engine.query(Point{5, 5}, 4, &stats);
  EXPECT_EQ(found.size(), 4u);
  EXPECT_FALSE(stats.used_subtree);
  EXPECT_TRUE(stats.certified);
  EXPECT_EQ(stats.rows_scanned, index.row_count());
  expect_knn_exact(spiral, random_points(u, 150, 27), 206, 4);
}

TEST(IndexKnn, DuplicateHeavyDataset) {
  // Duplicates are distinct rows: all copies of the nearest point must be
  // reported, in input order.
  const Universe u = Universe::pow2(2, 5);
  Xoshiro256 rng(7);
  std::vector<Point> points;
  for (int i = 0; i < 300; ++i) {
    points.push_back(Point{static_cast<coord_t>(rng.next_below(3)),
                           static_cast<coord_t>(rng.next_below(3))});
  }
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  expect_knn_exact(*h, points, 207, 5);
}

TEST(IndexKnn, DegenerateDatasets) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);

  const PointIndex empty = PointIndex::build(*h, {});
  KnnEngine empty_engine(empty);
  KnnStats stats;
  EXPECT_TRUE(empty_engine.query(Point{0, 0}, 3, &stats).empty());
  EXPECT_TRUE(stats.certified);

  expect_knn_exact(*h, {Point{5, 11}}, 208, 4);
  expect_knn_exact(*h, std::vector<Point>(50, Point{9, 2}), 209, 4);
}

TEST(IndexKnn, KZeroAndBadQuery) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const PointIndex index = PointIndex::build(*h, random_points(u, 50, 28));
  KnnEngine engine(index);
  EXPECT_TRUE(engine.query(Point{1, 1}, 0).empty());
  EXPECT_THROW(engine.query(Point{1, 16}, 3), IndexArgumentError);
  EXPECT_THROW(engine.query(Point{1, 1, 1}, 3), IndexArgumentError);
  // The app adapter validates before encoding the query (permutation-backed
  // curves would otherwise index their key table out of bounds).
  const CurvePtr random = make_curve(CurveFamily::kRandom, u, 3);
  const PointIndex random_index =
      PointIndex::build(*random, std::vector<Point>{Point{1, 1}, Point{2, 2}});
  EXPECT_THROW(knn_via_index(random_index, Point{1, 16}, 1, nullptr),
               IndexArgumentError);
}

TEST(IndexKnn, ViaIndexWithDuplicateQueryCellRows) {
  // The query's own cell appears several times in the index; knn_via_index
  // must still produce k *other* cells (it sizes its over-ask by the row
  // count at the query's key).
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  std::vector<Point> points(3, Point{5, 5});
  points.push_back(Point{5, 6});
  points.push_back(Point{6, 5});
  points.push_back(Point{9, 9});
  const PointIndex index = PointIndex::build(*h, points);
  std::vector<Point> neighbors;
  ASSERT_TRUE(knn_via_index(index, Point{5, 5}, 3, &neighbors));
  ASSERT_EQ(neighbors.size(), 3u);
  for (const Point& p : neighbors) EXPECT_NE(p, (Point{5, 5}));
  // Asking for more other-cells than exist must fail, not underfill.
  EXPECT_FALSE(knn_via_index(index, Point{5, 5}, 4, &neighbors));
}

TEST(IndexKnn, AgreesWithWindowReferencePath) {
  // Full-grid index: knn_via_index must reproduce knn_via_window (the
  // retired enumeration reference) wherever the window path is provably
  // complete.
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  std::vector<Point> grid;
  grid.reserve(u.cell_count());
  Box::full(u).for_each_cell([&](const Point& cell) { grid.push_back(cell); });
  const PointIndex index = PointIndex::build(*h, grid);
  Xoshiro256 rng(29);
  for (int i = 0; i < 20; ++i) {
    const Point query = random_cell(u, rng);
    for (int k : {1, 4, 9}) {
      std::vector<Point> via_window;
      std::vector<Point> via_index;
      // Window = whole curve: the reference is always complete.
      ASSERT_TRUE(knn_via_window(*h, query, k, u.cell_count(), &via_window));
      ASSERT_TRUE(knn_via_index(index, query, k, &via_index));
      EXPECT_EQ(via_index, via_window)
          << "query " << query.to_string() << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace sfc
