// Build invariants of the SFC point index: sorted key column, stable
// payload-id permutation, gathered point column, and block-directory row
// resolution — all bit-identical across pools and grains.
#include "sfc/index/point_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/parallel/thread_pool.h"
#include "sfc/rng/sampling.h"

namespace sfc {
namespace {

std::vector<Point> random_points(const Universe& u, std::size_t count,
                                 std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) points.push_back(random_cell(u, rng));
  return points;
}

void expect_build_invariants(const SpaceFillingCurve& curve,
                             const std::vector<Point>& points,
                             const IndexBuildOptions& options = {}) {
  const PointIndex index = PointIndex::build(curve, points, options);
  ASSERT_EQ(index.row_count(), points.size());
  std::vector<bool> seen(points.size(), false);
  for (std::uint64_t r = 0; r < index.row_count(); ++r) {
    const std::uint32_t id = index.id_of_row(r);
    ASSERT_LT(id, points.size());
    EXPECT_FALSE(seen[id]) << "id " << id << " appears twice";
    seen[id] = true;
    // Row key and point are the encode of the input point the id names.
    EXPECT_EQ(index.key_of_row(r), curve.index_of(points[id]));
    EXPECT_EQ(index.point_of_row(r), points[id]);
    if (r > 0) {
      ASSERT_LE(index.key_of_row(r - 1), index.key_of_row(r)) << "unsorted";
      if (index.key_of_row(r - 1) == index.key_of_row(r)) {
        // Stable: duplicate keys keep input order.
        EXPECT_LT(index.id_of_row(r - 1), index.id_of_row(r));
      }
    }
  }
}

TEST(PointIndex, BuildInvariantsAcrossFamilies) {
  const Universe u = Universe::pow2(2, 5);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 7);
    expect_build_invariants(*curve, random_points(u, 500, 11));
  }
}

TEST(PointIndex, DuplicateHeavyDataset) {
  // Coordinates drawn from {0..3}^2 in a side-32 universe: ~every point is
  // a duplicate of another.
  const Universe u = Universe::pow2(2, 5);
  Xoshiro256 rng(5);
  std::vector<Point> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back(Point{static_cast<coord_t>(rng.next_below(4)),
                           static_cast<coord_t>(rng.next_below(4))});
  }
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  expect_build_invariants(*h, points);
}

TEST(PointIndex, DegenerateDatasets) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  expect_build_invariants(*z, {});
  expect_build_invariants(*z, {Point{7, 9}});
  expect_build_invariants(*z, std::vector<Point>(100, Point{3, 3}));

  const PointIndex empty = PointIndex::build(*z, {});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.block_count(), 0u);
  EXPECT_EQ(empty.lower_bound_row(0), 0u);
  EXPECT_EQ(empty.rows_in_interval(0, u.cell_count() - 1),
            (std::pair<std::uint64_t, std::uint64_t>{0, 0}));
}

TEST(PointIndex, RowResolutionMatchesEqualRange) {
  const Universe u = Universe::pow2(2, 5);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const std::vector<Point> points = random_points(u, 700, 23);
  // Exercise directory granularities from one row per block to one block.
  for (std::uint32_t block_rows : {1u, 3u, 64u, 256u, 100000u}) {
    IndexBuildOptions options;
    options.block_rows = block_rows;
    const PointIndex index = PointIndex::build(*h, points, options);
    const auto keys = index.keys();
    Xoshiro256 rng(31);
    for (int i = 0; i < 300; ++i) {
      const index_t a = rng.next_below(u.cell_count());
      const index_t b = rng.next_below(u.cell_count());
      const index_t lo = std::min(a, b), hi = std::max(a, b);
      const auto expect_first = static_cast<std::uint64_t>(
          std::lower_bound(keys.begin(), keys.end(), lo) - keys.begin());
      const auto expect_last = static_cast<std::uint64_t>(
          std::upper_bound(keys.begin(), keys.end(), hi) - keys.begin());
      EXPECT_EQ(index.lower_bound_row(lo), expect_first)
          << "block_rows " << block_rows;
      const auto [first, last] = index.rows_in_interval(lo, hi);
      EXPECT_EQ(first, expect_first) << "block_rows " << block_rows;
      EXPECT_EQ(last, std::max(expect_first, expect_last))
          << "block_rows " << block_rows;
    }
    // Past-the-end key resolves to row_count, empty interval to an empty
    // range.
    EXPECT_EQ(index.lower_bound_row(u.cell_count()), index.row_count());
  }
}

TEST(PointIndex, BuildIsDeterministicAcrossPoolsAndGrains) {
  const Universe u = Universe::pow2(2, 5);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const std::vector<Point> points = random_points(u, 5000, 77);
  const PointIndex base = PointIndex::build(*h, points);
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  for (ThreadPool* pool : {&pool1, &pool8}) {
    for (std::uint64_t grain : {std::uint64_t{1}, std::uint64_t{100},
                                std::uint64_t{1} << 16}) {
      IndexBuildOptions options;
      options.pool = pool;
      options.grain = grain;
      const PointIndex other = PointIndex::build(*h, points, options);
      ASSERT_EQ(other.row_count(), base.row_count());
      for (std::uint64_t r = 0; r < base.row_count(); ++r) {
        ASSERT_EQ(other.key_of_row(r), base.key_of_row(r));
        ASSERT_EQ(other.id_of_row(r), base.id_of_row(r));
      }
    }
  }
}

TEST(PointIndex, RejectsInvalidPoints) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  // Out of universe.
  EXPECT_THROW(PointIndex::build(*z, std::vector<Point>{Point{3, 16}}),
               IndexArgumentError);
  // Dimension mismatch.
  EXPECT_THROW(PointIndex::build(*z, std::vector<Point>{Point{3, 3, 3}}),
               IndexArgumentError);
  // The error names the first bad position, independent of threading.
  std::vector<Point> points(50, Point{1, 1});
  points[17] = Point{99, 0};
  points[40] = Point{99, 0};
  try {
    PointIndex::build(*z, points);
    FAIL() << "expected IndexArgumentError";
  } catch (const IndexArgumentError& error) {
    EXPECT_NE(std::string(error.what()).find("position 17"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace sfc
