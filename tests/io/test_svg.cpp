#include "sfc/io/svg.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sfc/curves/curve_factory.h"

namespace sfc {
namespace {

TEST(Svg, ContainsPolylineWithAllCells) {
  const Universe u = Universe::pow2(2, 2);
  const CurvePtr hilbert = make_curve(CurveFamily::kHilbert, u);
  const std::string svg = render_curve_svg(*hilbert);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 16 cells -> 16 points -> 15 separating spaces inside points="...".
  const auto points_pos = svg.find("points=\"");
  ASSERT_NE(points_pos, std::string::npos);
  const auto points_end = svg.find('"', points_pos + 8);
  const std::string points = svg.substr(points_pos + 8, points_end - points_pos - 8);
  int commas = 0;
  for (char ch : points) {
    if (ch == ',') ++commas;
  }
  EXPECT_EQ(commas, 16);
}

TEST(Svg, GridToggle) {
  const Universe u = Universe::pow2(2, 1);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  SvgOptions with_grid;
  with_grid.draw_grid = true;
  SvgOptions without_grid;
  without_grid.draw_grid = false;
  EXPECT_NE(render_curve_svg(*z, with_grid).find("#dddddd"), std::string::npos);
  EXPECT_EQ(render_curve_svg(*z, without_grid).find("#dddddd"), std::string::npos);
}

TEST(Svg, WriteTextFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sfc_svg_test.svg";
  EXPECT_TRUE(write_text_file(path, "<svg>test</svg>\n"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "<svg>test</svg>\n");
  std::remove(path.c_str());
}

TEST(Svg, WriteTextFileFailsOnBadPath) {
  EXPECT_FALSE(write_text_file("/nonexistent-dir/xyz/file.svg", "data"));
}

}  // namespace
}  // namespace sfc
