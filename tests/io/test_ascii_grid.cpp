#include "sfc/io/ascii_grid.h"

#include <gtest/gtest.h>

#include "sfc/curves/curve_factory.h"
#include "sfc/curves/simple_curve.h"
#include "sfc/curves/zcurve.h"

namespace sfc {
namespace {

TEST(AsciiGrid, KeyGridSimpleCurve4x4) {
  // Simple curve on 4x4, top row is x2=3: keys 12..15.
  const Universe u(2, 4);
  const SimpleCurve s(u);
  const std::string grid = render_key_grid(s);
  EXPECT_EQ(grid,
            "12 13 14 15\n"
            " 8  9 10 11\n"
            " 4  5  6  7\n"
            " 0  1  2  3\n");
}

TEST(AsciiGrid, KeyGridZCurve2x2) {
  // Z curve keys: (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3, drawn top row first.
  const Universe u = Universe::pow2(2, 1);
  const ZCurve z(u);
  EXPECT_EQ(render_key_grid(z), "1 3\n0 2\n");
}

TEST(AsciiGrid, BinaryGridMatchesFigure3Layout) {
  const Universe u = Universe::pow2(2, 3);
  const ZCurve z(u);
  const std::string grid = render_key_grid_binary(z);
  // Bottom-left cell (0,0) must be 000000, its right neighbor 000010.
  const auto last_line_start = grid.rfind('\n', grid.size() - 2);
  const std::string bottom = grid.substr(last_line_start + 1);
  EXPECT_EQ(bottom.substr(0, 6), "000000");
  EXPECT_EQ(bottom.substr(7, 6), "000010");
  // Top-left cell (0,7): x2=111 -> 010101.
  EXPECT_EQ(grid.substr(0, 6), "010101");
}

TEST(AsciiGrid, PathRenderingSnake) {
  const Universe u(2, 3);
  const CurvePtr snake = make_curve(CurveFamily::kSnake, u);
  const std::string path = render_curve_path(*snake);
  // Continuous curve: no '*' jump markers.
  EXPECT_EQ(path.find('*'), std::string::npos);
  EXPECT_NE(path.find('S'), std::string::npos);
  EXPECT_NE(path.find('E'), std::string::npos);
  EXPECT_NE(path.find('-'), std::string::npos);
  EXPECT_NE(path.find('|'), std::string::npos);
}

TEST(AsciiGrid, PathRenderingZCurveHasJumps) {
  const Universe u = Universe::pow2(2, 2);
  const ZCurve z(u);
  const std::string path = render_curve_path(z);
  // The Z curve is discontinuous: jump markers must appear.
  EXPECT_NE(path.find('*'), std::string::npos);
}

TEST(AsciiGrid, CanvasDimensions) {
  const Universe u(2, 4);
  const SimpleCurve s(u);
  const std::string path = render_curve_path(s);
  // 2*side-1 = 7 rows of 7 chars + newline each.
  EXPECT_EQ(path.size(), 7u * 8u);
}

}  // namespace
}  // namespace sfc
