#include "sfc/io/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sfc {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table table({"curve", "Davg"});
  table.add_row({"z-curve", "5.25"});
  table.add_row({"simple", "5.5"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("curve"), std::string::npos);
  EXPECT_NE(text.find("z-curve"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Two header+underline lines plus two rows.
  int lines = 0;
  for (char ch : text) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
}

TEST(Table, RowCountTracksRows) {
  Table table({"a"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, CsvEscaping) {
  Table table({"name", "value"});
  table.add_row({"plain", "1"});
  table.add_row({"with,comma", "2"});
  table.add_row({"with\"quote", "3"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\",2\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\",3\n"), std::string::npos);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(Table::fmt(1.5), "1.5");
  EXPECT_EQ(Table::fmt(2.0 / 3.0, 3), "0.667");
  EXPECT_EQ(Table::fmt_int(1234567), "1234567");
}

TEST(TableDeath, WrongArityAborts) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only-one"}), "");
}

}  // namespace
}  // namespace sfc
