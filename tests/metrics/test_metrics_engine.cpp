// End-to-end equivalence of the slab-streamed metrics engine with the seed
// scalar reference path, straddling slab boundaries, the key-cache ceiling,
// and thread counts.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sfc/core/nn_stretch.h"
#include "sfc/core/stretch_distribution.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {
namespace {

// Every floating-point field must be bit-identical between the engines, so
// plain == is the right comparison.
void expect_identical(const NNStretchResult& a, const NNStretchResult& b,
                      const std::string& context) {
  EXPECT_EQ(a.average_average, b.average_average) << context;
  EXPECT_EQ(a.average_maximum, b.average_maximum) << context;
  EXPECT_EQ(a.average_minimum, b.average_minimum) << context;
  EXPECT_EQ(a.min_cell_stretch, b.min_cell_stretch) << context;
  EXPECT_EQ(a.max_cell_stretch, b.max_cell_stretch) << context;
  EXPECT_EQ(a.lemma3_lower, b.lemma3_lower) << context;
  EXPECT_EQ(a.lemma3_upper, b.lemma3_upper) << context;
  EXPECT_TRUE(a.nn_distance_total == b.nn_distance_total) << context;
  for (std::size_t i = 0; i < a.lambda.size(); ++i) {
    EXPECT_TRUE(a.lambda[i] == b.lambda[i]) << context << " lambda " << i;
  }
}

NNStretchResult run(const SpaceFillingCurve& curve, NNStretchEngine engine,
                    std::uint64_t grain, ThreadPool* pool = nullptr,
                    index_t max_cache_cells = index_t{1} << 27) {
  NNStretchOptions options;
  options.engine = engine;
  options.grain = grain;
  options.pool = pool;
  options.max_cache_cells = max_cache_cells;
  return compute_nn_stretch(curve, options);
}

TEST(MetricsEngine, SlabMatchesScalarEveryFamily2D) {
  // 1024 cells with grain 32: several slabs, several reduction chunks per
  // slab.
  const Universe u = Universe::pow2(2, 5);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 11);
    for (const std::uint64_t grain : {std::uint64_t{32}, std::uint64_t{1} << 16}) {
      expect_identical(run(*curve, NNStretchEngine::kSlab, grain),
                       run(*curve, NNStretchEngine::kScalar, grain),
                       family_name(family) + " grain " + std::to_string(grain));
    }
  }
}

TEST(MetricsEngine, SlabMatchesScalarEveryFamily3D) {
  // 4096 cells, halo 256: cross-plane neighbors straddle slab boundaries at
  // grain 256.
  const Universe u = Universe::pow2(3, 4);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 7);
    expect_identical(run(*curve, NNStretchEngine::kSlab, 256),
                     run(*curve, NNStretchEngine::kScalar, 256),
                     family_name(family) + " 3d");
  }
}

TEST(MetricsEngine, SlabMatchesScalarAboveTheCacheCeiling) {
  // max_cache_cells = 0 forces the scalar engine onto the seed fallback
  // (2d+1 virtual encodes per cell) — the configuration the slab engine
  // replaces on huge universes.
  const Universe u = Universe::pow2(2, 5);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  expect_identical(run(*h, NNStretchEngine::kSlab, 64),
                   run(*h, NNStretchEngine::kScalar, 64, nullptr,
                       /*max_cache_cells=*/0),
                   "scalar fallback");
}

TEST(MetricsEngine, SlabDeterministicAcrossThreadCounts) {
  const Universe u2 = Universe::pow2(2, 5);
  const Universe u3 = Universe::pow2(3, 3);
  ThreadPool one(1), two(2), eight(8);
  for (const Universe* u : {&u2, &u3}) {
    const CurvePtr z = make_curve(CurveFamily::kZ, *u);
    const NNStretchResult a = run(*z, NNStretchEngine::kSlab, 64, &one);
    const NNStretchResult b = run(*z, NNStretchEngine::kSlab, 64, &two);
    const NNStretchResult c = run(*z, NNStretchEngine::kSlab, 64, &eight);
    expect_identical(a, b, "1 vs 2 threads");
    expect_identical(a, c, "1 vs 8 threads");
  }
}

TEST(MetricsEngine, SlabMatchesPerCellHelpers3D) {
  const Universe u = Universe::pow2(3, 2);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  long double avg = 0.0L, max = 0.0L;
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point cell = u.from_row_major(id);
    avg += static_cast<long double>(cell_average_stretch(*h, cell));
    max += static_cast<long double>(cell_maximum_stretch(*h, cell));
  }
  const NNStretchResult r = compute_nn_stretch(*h);
  const auto n = static_cast<long double>(u.cell_count());
  EXPECT_NEAR(static_cast<double>(avg / n), r.average_average, 1e-12);
  EXPECT_NEAR(static_cast<double>(max / n), r.average_maximum, 1e-12);
}

TEST(MetricsEngine, StretchDistributionMatchesPerCellHelpers) {
  for (const Universe& u : {Universe::pow2(2, 4), Universe::pow2(3, 2)}) {
    const CurvePtr z = make_curve(CurveFamily::kZ, u);
    const StretchDistribution dist = compute_stretch_distribution(*z);

    long double avg_sum = 0.0L;
    double avg_max = 0.0;
    for (index_t id = 0; id < u.cell_count(); ++id) {
      const double cell = cell_average_stretch(*z, u.from_row_major(id));
      avg_sum += static_cast<long double>(cell);
      avg_max = std::max(avg_max, cell);
    }
    EXPECT_NEAR(
        dist.cell_average.mean,
        static_cast<double>(avg_sum / static_cast<long double>(u.cell_count())),
        1e-12);
    EXPECT_DOUBLE_EQ(dist.cell_average.max, avg_max);
    // The distribution mean of δavg is Davg by definition.
    const NNStretchResult r = compute_nn_stretch(*z);
    EXPECT_NEAR(dist.cell_average.mean, r.average_average, 1e-12);
    EXPECT_NEAR(dist.cell_maximum.mean, r.average_maximum, 1e-12);
    EXPECT_NEAR(dist.cell_minimum.mean, r.average_minimum, 1e-12);
  }
}

TEST(MetricsEngine, DefaultOptionsUseTheSlabEngine) {
  const NNStretchOptions options;
  EXPECT_EQ(options.engine, NNStretchEngine::kSlab);
}

}  // namespace
}  // namespace sfc
