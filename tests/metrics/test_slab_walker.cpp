#include "sfc/metrics/slab_walker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/curves/simple_curve.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {
namespace {

TEST(SlabWalker, EncodeRowMajorRangeMatchesIndexOf) {
  // Non-power-of-two side exercises the generic coordinate walk.
  const Universe u(2, 6);
  const SimpleCurve s(u);
  for (const index_t begin : {index_t{0}, index_t{5}, index_t{17}}) {
    std::vector<index_t> keys(u.cell_count() - begin);
    encode_row_major_range(s, begin, keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(keys[i], s.index_of(u.from_row_major(begin + i)))
          << "begin=" << begin << " i=" << i;
    }
  }
}

TEST(SlabWalker, EncodeRowMajorRangeCrossesSliceBoundaries) {
  // 16384 cells from an odd offset spans several 4096-point encode slices.
  const Universe u = Universe::pow2(2, 7);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const index_t begin = 3;
  std::vector<index_t> keys(u.cell_count() - begin);
  encode_row_major_range(*h, begin, keys);
  for (const index_t probe : {index_t{0}, index_t{4092}, index_t{4093},
                              index_t{8189}, keys.size() - 1}) {
    EXPECT_EQ(keys[probe], h->index_of(u.from_row_major(begin + probe)))
        << "probe=" << probe;
  }
}

TEST(SlabWalker, BuildKeyTableMatchesIndexOf) {
  const Universe u = Universe::pow2(3, 2);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  ThreadPool pool(2);
  std::vector<index_t> keys(u.cell_count());
  build_key_table(*z, pool, keys, 16);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    EXPECT_EQ(keys[id], z->index_of(u.from_row_major(id))) << "id=" << id;
  }
}

TEST(SlabWalker, DimStrideAndHalo) {
  const Universe u(3, 5);
  EXPECT_EQ(dim_stride(u, 0), 1u);
  EXPECT_EQ(dim_stride(u, 1), 5u);
  EXPECT_EQ(dim_stride(u, 2), 25u);
  EXPECT_EQ(slab_halo(u), 25u);  // one plane of the highest dimension
  const Universe line(1, 7);
  EXPECT_EQ(slab_halo(line), 1u);
}

TEST(SlabWalker, SlabGrainAlignsWithReductionGrain) {
  const Universe u = Universe::pow2(3, 4);  // halo = 256
  for (const std::uint64_t grain : {std::uint64_t{64}, std::uint64_t{100},
                                    std::uint64_t{1} << 16}) {
    const std::uint64_t slab = slab_grain(u, grain);
    EXPECT_EQ(slab % grain, 0u) << "grain=" << grain;
    // Body never smaller than 8 halos (bounds the halo re-encode overhead)
    // nor smaller than one reduction chunk.
    EXPECT_GE(slab, 8 * slab_halo(u)) << "grain=" << grain;
    EXPECT_GE(slab, grain);
  }
}

// Collects run ids and checks they are exactly the cells whose neighbor
// along `dim` exists in the given direction.
void check_runs(const Universe& u, int dim, bool forward) {
  std::vector<bool> in_run(u.cell_count(), false);
  const auto record = [&](index_t begin, index_t end) {
    for (index_t id = begin; id < end; ++id) {
      EXPECT_FALSE(in_run[id]) << "id " << id << " visited twice";
      in_run[id] = true;
    }
  };
  if (forward) {
    for_each_forward_run(u, 0, u.cell_count(), dim, record);
  } else {
    for_each_backward_run(u, 0, u.cell_count(), dim, record);
  }
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point cell = u.from_row_major(id);
    const bool expected = forward ? cell[dim] + 1 < u.side() : cell[dim] > 0;
    EXPECT_EQ(in_run[id], expected)
        << "dim=" << dim << " forward=" << forward << " id=" << id;
  }
}

TEST(SlabWalker, RunsEnumerateExactlyTheValidNeighbors) {
  for (const Universe& u : {Universe(3, 4), Universe(2, 5), Universe(1, 3)}) {
    for (int dim = 0; dim < u.dim(); ++dim) {
      check_runs(u, dim, /*forward=*/true);
      check_runs(u, dim, /*forward=*/false);
    }
  }
}

TEST(SlabWalker, RunsAreEmptyOnUnitSide) {
  const Universe u(2, 1);
  int calls = 0;
  for_each_forward_run(u, 0, u.cell_count(), 0,
                       [&](index_t, index_t) { ++calls; });
  for_each_backward_run(u, 0, u.cell_count(), 1,
                        [&](index_t, index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(SlabWalker, SlabBodiesPartitionUniverseAndBuffersCoverHalos) {
  const Universe u = Universe::pow2(3, 4);  // 4096 cells, halo 256
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  ThreadPool pool(4);
  const std::uint64_t grain = 256;  // slab body = 2048 -> two slabs

  struct SlabRecord {
    index_t begin, end, buffer_begin, buffer_end;
    index_t first_key, last_key;
    std::uint64_t slab_index;
  };
  std::mutex mutex;
  std::vector<SlabRecord> seen;
  for_each_key_slab(*h, pool, grain, [&](const KeySlab& slab) {
    SlabRecord record{slab.begin,      slab.end,
                      slab.buffer_begin, slab.buffer_end,
                      slab.key_at(slab.buffer_begin),
                      slab.key_at(slab.buffer_end - 1),
                      slab.slab_index};
    const std::lock_guard<std::mutex> lock(mutex);
    seen.push_back(record);
  });

  ASSERT_EQ(seen.size(), slab_count(u, grain));
  ASSERT_GT(seen.size(), 1u);  // the size was chosen to straddle slabs
  std::sort(seen.begin(), seen.end(),
            [](const SlabRecord& a, const SlabRecord& b) {
              return a.begin < b.begin;
            });
  const index_t halo = slab_halo(u);
  index_t expected_begin = 0;
  for (const SlabRecord& slab : seen) {
    EXPECT_EQ(slab.begin, expected_begin);  // contiguous partition of [0, n)
    expected_begin = slab.end;
    EXPECT_EQ(slab.begin % slab_grain(u, grain), 0u);
    // Buffer covers one halo on each side, clamped to the universe.
    EXPECT_EQ(slab.buffer_begin, slab.begin > halo ? slab.begin - halo : 0);
    EXPECT_EQ(slab.buffer_end,
              std::min<index_t>(u.cell_count(), slab.end + halo));
    EXPECT_EQ(slab.first_key, h->index_of(u.from_row_major(slab.buffer_begin)));
    EXPECT_EQ(slab.last_key,
              h->index_of(u.from_row_major(slab.buffer_end - 1)));
  }
  EXPECT_EQ(expected_begin, u.cell_count());
}

}  // namespace
}  // namespace sfc
