// Bit-identity of the two-phase diff-then-reduce neighbor-stats kernel
// against the retained fused scalar reference, over every factory family ×
// pool sizes 1/2/8 × two slab grains.  Every accumulator is an exact
// integer, so "bit-identical" means element-wise equal vectors and equal
// u128 Λ_i — no tolerance anywhere.  A long-run case crosses the kernel's
// internal diff-tile boundary several times, so partial tiles and full tiles
// both get covered.
#include "sfc/metrics/neighbor_stats.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/metrics/slab_walker.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {
namespace {

// Runs both stats kernels and both Λ-only kernels on every slab of the
// universe and requires exact equality of every field, with all four Λ
// sources agreeing.  gtest assertions are thread-safe on pthread platforms,
// so checking inside the pool callback is fine.
void check_bit_identity(const SpaceFillingCurve& curve, ThreadPool& pool,
                        std::uint64_t grain) {
  const Universe& u = curve.universe();
  for_each_key_slab(curve, pool, grain, [&](const KeySlab& slab) {
    SlabNeighborStats fast;
    SlabNeighborStats reference;
    accumulate_neighbor_stats(u, slab, fast);
    accumulate_neighbor_stats_reference(u, slab, reference);
    ASSERT_EQ(fast.distance_sum, reference.distance_sum)
        << curve.name() << " slab [" << slab.begin << ", " << slab.end << ")";
    ASSERT_EQ(fast.distance_max, reference.distance_max) << curve.name();
    ASSERT_EQ(fast.distance_min, reference.distance_min) << curve.name();
    ASSERT_EQ(fast.degree, reference.degree) << curve.name();
    std::array<u128, kMaxDim> lambda_fast{};
    std::array<u128, kMaxDim> lambda_reference{};
    accumulate_lambda(u, slab, lambda_fast);
    accumulate_lambda_reference(u, slab, lambda_reference);
    for (std::size_t i = 0; i < fast.lambda.size(); ++i) {
      ASSERT_TRUE(fast.lambda[i] == reference.lambda[i])
          << curve.name() << " lambda " << i;
      ASSERT_TRUE(lambda_fast[i] == reference.lambda[i])
          << curve.name() << " lambda-only kernel " << i;
      ASSERT_TRUE(lambda_reference[i] == reference.lambda[i])
          << curve.name() << " lambda-only reference " << i;
    }
  });
}

TEST(LambdaKernel, BitIdenticalEveryFamilyThreadsAndGrains2D) {
  const Universe u = Universe::pow2(2, 5);  // 1024 cells
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 17);
    for (unsigned threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      check_bit_identity(*curve, pool, /*grain=*/32);
      check_bit_identity(*curve, pool, /*grain=*/std::uint64_t{1} << 16);
    }
  }
}

TEST(LambdaKernel, BitIdenticalEveryFamily3D) {
  const Universe u = Universe::pow2(3, 3);  // 512 cells, halo 64
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 19);
    ThreadPool pool(2);
    check_bit_identity(*curve, pool, /*grain=*/64);
  }
}

TEST(LambdaKernel, BitIdenticalAcrossTileBoundaries1D) {
  // d=1, 2^14 cells: the single forward run spans 16383 neighbors — four
  // full diff tiles plus a partial one — all inside one slab.
  const Universe u = Universe::pow2(1, 14);
  const CurvePtr curve = make_curve(CurveFamily::kHilbert, u);
  ThreadPool pool(1);
  check_bit_identity(*curve, pool, /*grain=*/std::uint64_t{1} << 16);
}

TEST(LambdaKernel, BitIdenticalAcrossTileBoundaries2D) {
  // Side 128: the stride-128 dimension walks runs of ~2^14 - 2^7 neighbors,
  // crossing several tile boundaries, while the stride-1 dimension stays on
  // short (127-long) runs — both extremes in one universe.
  const Universe u = Universe::pow2(2, 7);  // 16384 cells
  for (CurveFamily family : {CurveFamily::kZ, CurveFamily::kHilbert}) {
    const CurvePtr curve = make_curve(family, u, 29);
    ThreadPool pool(2);
    check_bit_identity(*curve, pool, /*grain=*/std::uint64_t{1} << 16);
  }
}

TEST(LambdaKernel, ComputeLambdaMatchesNNStretchEveryFamily) {
  // The public Λ-only entry point must reproduce NNStretchResult::lambda
  // exactly, for any pool size and grain.
  const Universe u = Universe::pow2(2, 6);  // 4096 cells
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 23);
    const NNStretchResult full = compute_nn_stretch(*curve);
    for (unsigned threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      for (std::uint64_t grain : {std::uint64_t{128}, std::uint64_t{1} << 16}) {
        NNStretchOptions options;
        options.pool = &pool;
        options.grain = grain;
        const std::array<u128, kMaxDim> lambda =
            compute_lambda(*curve, options);
        for (int i = 0; i < u.dim(); ++i) {
          ASSERT_TRUE(lambda[static_cast<std::size_t>(i)] ==
                      full.lambda[static_cast<std::size_t>(i)])
              << family_name(family) << " threads=" << threads
              << " grain=" << grain << " dim " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace sfc
