#include "sfc/metrics/neighbor_stats.h"

#include <gtest/gtest.h>

#include <limits>
#include <mutex>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/metrics/slab_walker.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {
namespace {

struct CellReference {
  std::uint64_t sum = 0;
  index_t max = 0;
  index_t min = std::numeric_limits<index_t>::max();
  int degree = 0;
};

// Brute force per-cell neighbor statistics straight from the definitions.
std::vector<CellReference> brute_force_cells(const SpaceFillingCurve& curve) {
  const Universe& u = curve.universe();
  std::vector<CellReference> cells(u.cell_count());
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point alpha = u.from_row_major(id);
    CellReference& ref = cells[id];
    u.for_each_neighbor(alpha, [&](const Point& beta) {
      const index_t dist = curve.curve_distance(alpha, beta);
      ref.sum += dist;
      ref.max = std::max(ref.max, dist);
      ref.min = std::min(ref.min, dist);
      ++ref.degree;
    });
  }
  return cells;
}

std::array<u128, kMaxDim> brute_force_lambda(const SpaceFillingCurve& curve) {
  const Universe& u = curve.universe();
  std::array<u128, kMaxDim> lambda{};
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point alpha = u.from_row_major(id);
    u.for_each_forward_neighbor(alpha, [&](const Point& beta, int dim) {
      lambda[static_cast<std::size_t>(dim)] += curve.curve_distance(alpha, beta);
    });
  }
  return lambda;
}

// Runs the slab kernel over the whole universe with the given grain and
// checks every per-cell statistic and every Λ_i against brute force.
void check_curve(const SpaceFillingCurve& curve, std::uint64_t grain) {
  const Universe& u = curve.universe();
  ThreadPool pool(2);
  const std::vector<CellReference> expected = brute_force_cells(curve);
  const std::array<u128, kMaxDim> expected_lambda = brute_force_lambda(curve);

  std::vector<CellReference> actual(u.cell_count());
  std::array<u128, kMaxDim> lambda{};
  std::mutex lambda_mutex;
  for_each_key_slab(curve, pool, grain, [&](const KeySlab& slab) {
    SlabNeighborStats stats;
    accumulate_neighbor_stats(u, slab, stats);
    for (index_t id = slab.begin; id < slab.end; ++id) {
      const std::size_t j = id - slab.begin;
      actual[id] = {stats.distance_sum[j], stats.distance_max[j],
                    stats.distance_min[j], stats.degree[j]};
    }
    const std::lock_guard<std::mutex> lock(lambda_mutex);
    for (std::size_t i = 0; i < lambda.size(); ++i) lambda[i] += stats.lambda[i];
  });

  for (index_t id = 0; id < u.cell_count(); ++id) {
    EXPECT_EQ(actual[id].sum, expected[id].sum) << curve.name() << " id=" << id;
    EXPECT_EQ(actual[id].max, expected[id].max) << curve.name() << " id=" << id;
    EXPECT_EQ(actual[id].degree, expected[id].degree)
        << curve.name() << " id=" << id;
    if (expected[id].degree > 0) {
      EXPECT_EQ(actual[id].min, expected[id].min)
          << curve.name() << " id=" << id;
    }
    EXPECT_EQ(actual[id].degree, u.neighbor_count(u.from_row_major(id)))
        << curve.name() << " id=" << id;
  }
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    EXPECT_TRUE(lambda[i] == expected_lambda[i])
        << curve.name() << " lambda " << i;
  }
}

TEST(NeighborStats, MatchesBruteForceEveryFamily2D) {
  const Universe u = Universe::pow2(2, 4);  // 256 cells
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 11);
    check_curve(*curve, /*grain=*/16);  // slab body 128 -> two slabs
    check_curve(*curve, /*grain=*/std::uint64_t{1} << 16);  // one slab
  }
}

TEST(NeighborStats, MatchesBruteForceEveryFamily3D) {
  const Universe u = Universe::pow2(3, 2);  // 64 cells, halo 16
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 13);
    check_curve(*curve, /*grain=*/8);
  }
}

TEST(NeighborStats, MultiSlab3DMatchesBruteForce) {
  // 4096 cells, halo 256: with grain 256 the slab body is 2048 cells, so
  // cross-plane neighbors straddle the slab boundary through the halos.
  const Universe u = Universe::pow2(3, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  check_curve(*h, /*grain=*/256);
}

TEST(NeighborStats, NonPowerOfTwoSideMatchesBruteForce) {
  const Universe u(2, 6);
  const CurvePtr s = make_curve(CurveFamily::kSimple, u);
  check_curve(*s, /*grain=*/8);
}

TEST(NeighborStats, SingleCellUniverseHasNoNeighbors) {
  const Universe u(2, 1);
  const CurvePtr s = make_curve(CurveFamily::kSimple, u);
  ThreadPool pool(1);
  for_each_key_slab(*s, pool, 16, [&](const KeySlab& slab) {
    SlabNeighborStats stats;
    accumulate_neighbor_stats(u, slab, stats);
    ASSERT_EQ(stats.degree.size(), 1u);
    EXPECT_EQ(stats.degree[0], 0);
    EXPECT_EQ(stats.distance_sum[0], 0u);
  });
}

}  // namespace
}  // namespace sfc
