// random_box_clustering must be a pure function of (curve, extent, samples,
// seed): the worker pool size, the reduction grain, and the run-count engine
// must never change a single output bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sfc/apps/range_query.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {
namespace {

void expect_identical(const ClusteringStats& a, const ClusteringStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.samples, b.samples) << label;
  EXPECT_EQ(a.extent, b.extent) << label;
  EXPECT_EQ(a.cells_per_box, b.cells_per_box) << label;
  // Bit-identical floating point, not approximate equality.
  EXPECT_EQ(a.mean_runs, b.mean_runs) << label;
  EXPECT_EQ(a.stderr_runs, b.stderr_runs) << label;
  EXPECT_EQ(a.max_runs, b.max_runs) << label;
}

TEST(ClusteringDeterminism, AcrossThreadCounts) {
  const Universe u = Universe::pow2(2, 5);
  for (CurveFamily family :
       {CurveFamily::kHilbert, CurveFamily::kZ, CurveFamily::kSnake}) {
    const CurvePtr curve = make_curve(family, u, 3);
    ThreadPool pool1(1);
    ThreadPool pool2(2);
    ThreadPool pool8(8);
    ClusteringOptions options;
    options.pool = &pool1;
    const ClusteringStats base = random_box_clustering(*curve, 5, 200, 42, options);
    options.pool = &pool2;
    expect_identical(base, random_box_clustering(*curve, 5, 200, 42, options),
                     family_name(family) + " 2 threads");
    options.pool = &pool8;
    expect_identical(base, random_box_clustering(*curve, 5, 200, 42, options),
                     family_name(family) + " 8 threads");
  }
}

TEST(ClusteringDeterminism, AcrossGrains) {
  const Universe u = Universe::pow2(2, 5);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  ThreadPool pool(4);
  ClusteringOptions options;
  options.pool = &pool;
  options.grain = 64;
  const ClusteringStats base = random_box_clustering(*h, 4, 150, 9, options);
  for (std::uint64_t grain : {1u, 7u, 1000u}) {
    options.grain = grain;
    expect_identical(base, random_box_clustering(*h, 4, 150, 9, options),
                     "grain " + std::to_string(grain));
  }
}

TEST(ClusteringDeterminism, CoverAndEnumerationEnginesAgree) {
  // The tentpole contract at the statistics level: "cover, then count merged
  // intervals" must reproduce the enumeration path bit for bit.
  const Universe u = Universe::pow2(2, 5);
  for (CurveFamily family : analytic_curve_families()) {
    const CurvePtr curve = make_curve(family, u);
    ThreadPool pool(4);
    ClusteringOptions cover_options;
    cover_options.pool = &pool;
    cover_options.engine = RunCountEngine::kCover;
    ClusteringOptions enum_options;
    enum_options.pool = &pool;
    enum_options.engine = RunCountEngine::kEnumeration;
    expect_identical(random_box_clustering(*curve, 6, 120, 31, cover_options),
                     random_box_clustering(*curve, 6, 120, 31, enum_options),
                     family_name(family));
  }
}

TEST(ClusteringDeterminism, SampleCountAndRange) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const ClusteringStats stats = random_box_clustering(*h, 4, 100, 77);
  EXPECT_EQ(stats.samples, 100u);
  EXPECT_EQ(stats.extent, 4u);
  EXPECT_EQ(stats.cells_per_box, 16u);
  EXPECT_GE(stats.mean_runs, 1.0);
  EXPECT_LE(stats.mean_runs, 16.0);
  EXPECT_GE(stats.max_runs, stats.mean_runs);
  EXPECT_GE(stats.stderr_runs, 0.0);
  // Zero samples: well-defined zeros, no division by zero.
  const ClusteringStats empty = random_box_clustering(*h, 4, 0, 77);
  EXPECT_EQ(empty.samples, 0u);
  EXPECT_EQ(empty.mean_runs, 0.0);
  EXPECT_EQ(empty.stderr_runs, 0.0);
}

}  // namespace
}  // namespace sfc
