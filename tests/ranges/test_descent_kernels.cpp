// Bit-identity of the direct descent kernels (Peano ternary-parity descent,
// PermutedZ bit-pick descent) against the generic batched-decoder path they
// replaced — exposed via GenericDescentCurve — plus determinism of the
// parallel single-box cover: pool size must never change a single interval,
// up to a 2^40-cell box.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sfc/common/math.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/generic_descent.h"
#include "sfc/curves/peano_curve.h"
#include "sfc/curves/zcurve.h"
#include "sfc/grid/box.h"
#include "sfc/parallel/thread_pool.h"
#include "sfc/ranges/range_cover.h"
#include "sfc/rng/xoshiro256.h"

namespace sfc {
namespace {

Box random_box(const Universe& u, Xoshiro256& rng) {
  Point lo = Point::zero(u.dim());
  Point hi = Point::zero(u.dim());
  for (int i = 0; i < u.dim(); ++i) {
    const coord_t a = static_cast<coord_t>(rng.next_below(u.side()));
    const coord_t b = static_cast<coord_t>(rng.next_below(u.side()));
    lo[i] = std::min(a, b);
    hi[i] = std::max(a, b);
  }
  return Box(lo, hi);
}

/// Walks the whole subtree: at every node, the direct kernel's children must
/// equal the generic decode-based children in geometry and key layout.
/// (States may differ — the generic path carries none — so recursion follows
/// the direct children, which hold the kernel's own state.)
void check_children_recursive(const SpaceFillingCurve& direct,
                              const GenericDescentCurve& generic,
                              const SubtreeNode& node) {
  if (node.side == 1) return;
  const index_t arity = ipow(direct.subtree_radix(), direct.universe().dim());
  std::vector<SubtreeNode> fast(arity);
  std::vector<SubtreeNode> reference(arity);
  direct.subtree_children(node, fast);
  generic.subtree_children(node, reference);
  for (index_t j = 0; j < arity; ++j) {
    const std::string label = direct.name() + " node " +
                              node.origin.to_string() + " side " +
                              std::to_string(node.side) + " child " +
                              std::to_string(j);
    for (int i = 0; i < direct.universe().dim(); ++i) {
      ASSERT_EQ(fast[j].origin[i], reference[j].origin[i]) << label;
    }
    ASSERT_EQ(fast[j].side, reference[j].side) << label;
    ASSERT_EQ(fast[j].key_lo, reference[j].key_lo) << label;
    ASSERT_EQ(fast[j].key_count, reference[j].key_count) << label;
    check_children_recursive(direct, generic, fast[j]);
  }
}

/// Covers through the direct kernel, through the generic-descent wrapper,
/// and by enumeration must all be the same interval list.
void check_covers(const SpaceFillingCurve& direct, std::uint64_t seed,
                  int boxes) {
  const GenericDescentCurve generic(direct);
  const RangeCoverEngine fast_engine(direct);
  const RangeCoverEngine reference_engine(generic);
  Xoshiro256 rng(seed);
  for (int i = 0; i < boxes; ++i) {
    const Box box = random_box(direct.universe(), rng);
    const std::string label = direct.name() + " box " + box.lo().to_string() +
                              ".." + box.hi().to_string();
    const std::vector<KeyInterval> fast = fast_engine.cover(box);
    const std::vector<KeyInterval> reference = reference_engine.cover(box);
    ASSERT_EQ(fast, reference) << label;
    ASSERT_EQ(fast, cover_by_enumeration(direct, box)) << label;
  }
}

TEST(PeanoDescentKernel, ChildrenMatchGenericDescentWholeTree) {
  for (const Universe& u : {Universe(1, 27), Universe(2, 9), Universe(3, 9)}) {
    const PeanoCurve curve(u);
    const GenericDescentCurve generic(curve);
    check_children_recursive(curve, generic, curve.subtree_root());
  }
}

TEST(PeanoDescentKernel, CoversMatchGenericDescentAndEnumeration) {
  check_covers(PeanoCurve(Universe(1, 81)), 11, 12);
  check_covers(PeanoCurve(Universe(2, 27)), 13, 12);
  check_covers(PeanoCurve(Universe(3, 9)), 17, 12);
}

TEST(PermutedZDescentKernel, ChildrenMatchGenericDescentWholeTree) {
  {
    const Universe u = Universe::pow2(2, 3);
    for (const std::vector<int>& order :
         {std::vector<int>{0, 1}, std::vector<int>{1, 0}}) {
      const PermutedZCurve curve(u, order);
      const GenericDescentCurve generic(curve);
      check_children_recursive(curve, generic, curve.subtree_root());
    }
  }
  {
    const Universe u = Universe::pow2(3, 2);
    for (const std::vector<int>& order :
         {std::vector<int>{2, 0, 1}, std::vector<int>{1, 2, 0},
          std::vector<int>{0, 1, 2}}) {
      const PermutedZCurve curve(u, order);
      const GenericDescentCurve generic(curve);
      check_children_recursive(curve, generic, curve.subtree_root());
    }
  }
}

TEST(PermutedZDescentKernel, CoversMatchGenericDescentAndEnumeration) {
  check_covers(PermutedZCurve(Universe::pow2(2, 5), {1, 0}), 19, 12);
  check_covers(PermutedZCurve(Universe::pow2(3, 3), {2, 0, 1}), 23, 12);
}

TEST(PermutedZDescentKernel, IdentityOrderMatchesZCurveCovers) {
  const Universe u = Universe::pow2(2, 5);
  const PermutedZCurve permuted(u, {0, 1});
  const ZCurve z(u);
  const RangeCoverEngine permuted_engine(permuted);
  const RangeCoverEngine z_engine(z);
  Xoshiro256 rng(29);
  for (int i = 0; i < 12; ++i) {
    const Box box = random_box(u, rng);
    ASSERT_EQ(permuted_engine.cover(box), z_engine.cover(box));
  }
}

TEST(ParallelCover, SameIntervalsAcrossPoolSizesEveryHierarchicalFamily) {
  const Universe u = Universe::pow2(2, 9);  // side 512
  Xoshiro256 rng(31);
  for (CurveFamily family :
       {CurveFamily::kZ, CurveFamily::kGray, CurveFamily::kHilbert}) {
    const CurvePtr curve = make_curve(family, u);
    const RangeCoverEngine serial(*curve);
    // Big boxes so the frontier crosses the parallel threshold.
    for (int i = 0; i < 4; ++i) {
      Box box = random_box(u, rng);
      const std::vector<KeyInterval> expected = serial.cover(box);
      for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        const RangeCoverEngine parallel(*curve, &pool);
        CoverStats stats;
        const std::vector<KeyInterval> cover = parallel.cover(box, &stats);
        ASSERT_EQ(cover, expected)
            << family_name(family) << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelCover, HugeBox2Pow40CellsMatchesSerial) {
  // A single 2^40-cell box (extent 2^20 per dimension) in a 2^42-cell
  // universe, at odd offsets so no box face aligns to any subcube grid and
  // the descent runs all the way to single-cell nodes (~16.8M nodes, ~1.5M
  // intervals).  The frontier grows to millions of nodes, so every level
  // runs through the parallel chunked path; the cover must match the serial
  // engine interval for interval, and its total size must be the box volume.
  const Universe u = Universe::pow2(2, 21);
  const CurvePtr curve = make_curve(CurveFamily::kHilbert, u);
  const coord_t extent = coord_t{1} << 20;
  const Box box(Point{1001, 2003},
                Point{1001 + extent - 1, 2003 + extent - 1});
  const RangeCoverEngine serial(*curve);
  CoverStats serial_stats;
  const std::vector<KeyInterval> expected = serial.cover(box, &serial_stats);
  index_t covered = 0;
  for (const KeyInterval& interval : expected) {
    covered += interval.hi - interval.lo + 1;
  }
  EXPECT_EQ(covered, box.cell_count());
  ThreadPool pool(8);
  const RangeCoverEngine parallel(*curve, &pool);
  CoverStats parallel_stats;
  const std::vector<KeyInterval> cover = parallel.cover(box, &parallel_stats);
  ASSERT_EQ(cover.size(), expected.size());
  ASSERT_EQ(cover, expected);
  EXPECT_EQ(parallel_stats.nodes_visited, serial_stats.nodes_visited);
}

}  // namespace
}  // namespace sfc
