// Structural invariants of the SubtreeTraversal API: for every hierarchical
// family, the recursive decomposition must partition both cell space and key
// space at every level, and leaves must agree with the curve's codec.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "sfc/common/math.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/peano_curve.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/curves/zcurve.h"
#include "sfc/grid/box.h"

namespace sfc {
namespace {

/// Recursively expands every node of the subtree and checks, at each level:
/// children tile the parent subcube, their key intervals partition the
/// parent interval in ascending order, and every cell of every child encodes
/// into the child's key interval (exhaustive — small universes only).
void check_subtree_recursive(const SpaceFillingCurve& curve,
                             const SubtreeNode& node) {
  const Universe& u = curve.universe();
  const int d = u.dim();
  const std::string label = curve.name() + " node at " +
                            node.origin.to_string() + " side " +
                            std::to_string(node.side);
  // Every cell of the subcube must encode inside the key interval.  (With
  // key intervals of all sibling subtrees disjoint, this is a bijection.)
  Point lo = node.origin;
  Point hi = node.origin;
  for (int i = 0; i < d; ++i) hi[i] += node.side - 1;
  ASSERT_TRUE(u.contains(lo)) << label;
  ASSERT_TRUE(u.contains(hi)) << label;
  ASSERT_EQ(node.key_count, ipow(node.side, d)) << label;
  Box(lo, hi).for_each_cell([&](const Point& cell) {
    const index_t key = curve.index_of(cell);
    EXPECT_GE(key, node.key_lo) << label << " cell " << cell.to_string();
    EXPECT_LT(key, node.key_lo + node.key_count)
        << label << " cell " << cell.to_string();
  });
  if (node.side == 1) {
    EXPECT_EQ(curve.index_of(node.origin), node.key_lo) << label;
    return;
  }
  const coord_t radix = curve.subtree_radix();
  ASSERT_EQ(node.side % radix, 0u) << label;
  const index_t arity = ipow(radix, d);
  std::vector<SubtreeNode> children(arity);
  curve.subtree_children(node, children);
  index_t next_key = node.key_lo;
  index_t cells_tiled = 0;
  for (index_t j = 0; j < arity; ++j) {
    const SubtreeNode& child = children[j];
    // Keys: consecutive equal-size blocks in visit order.
    EXPECT_EQ(child.key_lo, next_key) << label << " child " << j;
    EXPECT_EQ(child.key_count, node.key_count / arity) << label;
    next_key += child.key_count;
    // Geometry: an aligned subcube of the parent, on the child-side grid.
    EXPECT_EQ(child.side, node.side / radix) << label;
    for (int i = 0; i < d; ++i) {
      EXPECT_GE(child.origin[i], node.origin[i]) << label << " child " << j;
      EXPECT_LE(child.origin[i] + child.side, node.origin[i] + node.side)
          << label << " child " << j;
      EXPECT_EQ((child.origin[i] - node.origin[i]) % child.side, 0u)
          << label << " child " << j;
    }
    cells_tiled += child.key_count;
    check_subtree_recursive(curve, child);
  }
  EXPECT_EQ(next_key, node.key_lo + node.key_count) << label;
  EXPECT_EQ(cells_tiled, node.key_count) << label;
  // Children with disjoint key ranges covering the parent, each child's
  // cells mapping into its own range, and counts matching — together this
  // proves the children tile the parent subcube exactly.
}

void check_whole_subtree(const SpaceFillingCurve& curve) {
  ASSERT_TRUE(curve.has_subtree_traversal()) << curve.name();
  const SubtreeNode root = curve.subtree_root();
  EXPECT_EQ(root.side, curve.universe().side());
  EXPECT_EQ(root.key_lo, 0u);
  EXPECT_EQ(root.key_count, curve.universe().cell_count());
  for (int i = 0; i < curve.universe().dim(); ++i) {
    EXPECT_EQ(root.origin[i], 0u);
  }
  check_subtree_recursive(curve, root);
}

TEST(SubtreeTraversal, DyadicFamilies1D) {
  const Universe u = Universe::pow2(1, 4);
  for (CurveFamily family :
       {CurveFamily::kZ, CurveFamily::kGray, CurveFamily::kHilbert}) {
    check_whole_subtree(*make_curve(family, u));
  }
}

TEST(SubtreeTraversal, DyadicFamilies2D) {
  const Universe u = Universe::pow2(2, 3);
  for (CurveFamily family :
       {CurveFamily::kZ, CurveFamily::kGray, CurveFamily::kHilbert}) {
    check_whole_subtree(*make_curve(family, u));
  }
}

TEST(SubtreeTraversal, DyadicFamilies3D) {
  const Universe u = Universe::pow2(3, 2);
  for (CurveFamily family :
       {CurveFamily::kZ, CurveFamily::kGray, CurveFamily::kHilbert}) {
    check_whole_subtree(*make_curve(family, u));
  }
}

TEST(SubtreeTraversal, Peano) {
  check_whole_subtree(PeanoCurve(Universe(1, 27)));
  check_whole_subtree(PeanoCurve(Universe(2, 9)));
  check_whole_subtree(PeanoCurve(Universe(3, 9)));
}

TEST(SubtreeTraversal, PermutedZEveryOrder2D) {
  const Universe u = Universe::pow2(2, 3);
  check_whole_subtree(PermutedZCurve(u, {0, 1}));
  check_whole_subtree(PermutedZCurve(u, {1, 0}));
}

TEST(SubtreeTraversal, PermutedZ3D) {
  const Universe u = Universe::pow2(3, 2);
  check_whole_subtree(PermutedZCurve(u, {2, 0, 1}));
  check_whole_subtree(PermutedZCurve(u, {1, 2, 0}));
}

TEST(SubtreeTraversal, NonHierarchicalFamiliesReportNoStructure) {
  const Universe u = Universe::pow2(2, 3);
  for (CurveFamily family :
       {CurveFamily::kSimple, CurveFamily::kSnake, CurveFamily::kRandom}) {
    EXPECT_FALSE(make_curve(family, u)->has_subtree_traversal())
        << family_name(family);
  }
}

TEST(SubtreeTraversal, TrivialSingleCellUniverse) {
  // side = 1: the root is already a leaf; no children to expand.
  const Universe u = Universe::pow2(2, 0);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const SubtreeNode root = z->subtree_root();
  EXPECT_EQ(root.side, 1u);
  EXPECT_EQ(root.key_count, 1u);
  EXPECT_EQ(z->index_of(root.origin), root.key_lo);
}

}  // namespace
}  // namespace sfc
