// Brute-force equivalence of the hierarchical cover engine against the
// enumeration reference, for every curve family in 1D/2D/3D, over randomized
// boxes including the degenerate single-cell and full-universe cases.
#include "sfc/ranges/range_cover.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "sfc/apps/range_query.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/diagonal_curve.h"
#include "sfc/curves/peano_curve.h"
#include "sfc/curves/spiral_curve.h"
#include "sfc/curves/tiled_curve.h"
#include "sfc/curves/zcurve.h"
#include "sfc/grid/box.h"
#include "sfc/rng/xoshiro256.h"

namespace sfc {
namespace {

/// A general (possibly non-cubic) random box inside the universe.
Box random_general_box(const Universe& u, Xoshiro256& rng) {
  Point lo = Point::zero(u.dim());
  Point hi = Point::zero(u.dim());
  for (int i = 0; i < u.dim(); ++i) {
    const coord_t a = static_cast<coord_t>(rng.next_below(u.side()));
    const coord_t b = static_cast<coord_t>(rng.next_below(u.side()));
    lo[i] = std::min(a, b);
    hi[i] = std::max(a, b);
  }
  return Box(lo, hi);
}

/// Checks every contract of RangeCoverEngine::cover on one box: intervals
/// are sorted, disjoint, maximal, cover exactly cell_count cells, and are
/// identical to the enumeration reference.
void expect_exact_cover(const SpaceFillingCurve& curve, const Box& box) {
  const std::string label = curve.name() + " d=" +
                            std::to_string(curve.universe().dim()) + " box " +
                            box.lo().to_string() + ".." + box.hi().to_string();
  CoverStats stats;
  const std::vector<KeyInterval> cover =
      RangeCoverEngine(curve).cover(box, &stats);
  const std::vector<KeyInterval> reference = cover_by_enumeration(curve, box);
  ASSERT_EQ(cover.size(), reference.size()) << label;
  EXPECT_EQ(cover, reference) << label;
  index_t covered = 0;
  for (std::size_t r = 0; r < cover.size(); ++r) {
    ASSERT_LE(cover[r].lo, cover[r].hi) << label;
    if (r > 0) {
      // Sorted, disjoint, and maximal: a gap of at least one key.
      ASSERT_GT(cover[r].lo, cover[r - 1].hi + 1) << label;
    }
    covered += cover[r].hi - cover[r].lo + 1;
  }
  EXPECT_EQ(covered, box.cell_count()) << label;
  // The merged-interval count is the clustering number, bit-identical
  // between both count_key_runs engines.
  const index_t runs_cover =
      count_key_runs(curve, box, RunCountEngine::kCover);
  const index_t runs_enum =
      count_key_runs(curve, box, RunCountEngine::kEnumeration);
  EXPECT_EQ(runs_cover, static_cast<index_t>(cover.size())) << label;
  EXPECT_EQ(runs_enum, runs_cover) << label;
  EXPECT_EQ(count_key_runs(curve, box), runs_cover) << label;
  EXPECT_EQ(stats.used_subtree, curve.has_subtree_traversal()) << label;
}

void expect_exact_covers_randomized(const SpaceFillingCurve& curve,
                                    std::uint64_t seed, int boxes) {
  const Universe& u = curve.universe();
  Xoshiro256 rng(seed);
  // Degenerate cases first: one cell (several placements) and the whole
  // universe (one interval for any bijection).
  for (int i = 0; i < 4; ++i) {
    const Point cell = random_cell(u, rng);
    expect_exact_cover(curve, Box(cell, cell));
  }
  const std::vector<KeyInterval> full =
      RangeCoverEngine(curve).cover(Box::full(u));
  ASSERT_EQ(full.size(), 1u) << curve.name();
  EXPECT_EQ(full[0], (KeyInterval{0, u.cell_count() - 1})) << curve.name();
  for (int i = 0; i < boxes; ++i) {
    expect_exact_cover(curve, random_general_box(u, rng));
  }
}

TEST(RangeCover, FactoryFamilies1D) {
  const Universe u = Universe::pow2(1, 6);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 7);
    expect_exact_covers_randomized(*curve, 11, 16);
  }
}

TEST(RangeCover, FactoryFamilies2D) {
  const Universe u = Universe::pow2(2, 4);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 7);
    expect_exact_covers_randomized(*curve, 12, 16);
  }
}

TEST(RangeCover, FactoryFamilies3D) {
  const Universe u = Universe::pow2(3, 3);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 7);
    expect_exact_covers_randomized(*curve, 13, 12);
  }
}

TEST(RangeCover, PeanoAllDims) {
  // The non-dyadic (triadic) hierarchical family: exact covers through the
  // generic decode-based subtree descent.
  for (const auto& [dim, side] : {std::pair<int, coord_t>{1, 27},
                                  {2, 27},
                                  {3, 9}}) {
    const PeanoCurve peano(Universe(dim, side));
    ASSERT_TRUE(peano.has_subtree_traversal());
    expect_exact_covers_randomized(peano, 14, 12);
  }
}

TEST(RangeCover, PermutedZ) {
  const PermutedZCurve z21(Universe::pow2(2, 4), {1, 0});
  ASSERT_TRUE(z21.has_subtree_traversal());
  expect_exact_covers_randomized(z21, 15, 16);
  const PermutedZCurve z312(Universe::pow2(3, 3), {2, 0, 1});
  expect_exact_covers_randomized(z312, 16, 10);
}

TEST(RangeCover, NonHierarchical2DCurves) {
  // Spiral, diagonal, tiled: exact answers through the enumeration fallback.
  const Universe u(2, 12);
  const SpiralCurve spiral(u);
  const DiagonalCurve diagonal(u);
  const TiledCurve tiled(u, 4);
  for (const SpaceFillingCurve* curve :
       {static_cast<const SpaceFillingCurve*>(&spiral),
        static_cast<const SpaceFillingCurve*>(&diagonal),
        static_cast<const SpaceFillingCurve*>(&tiled)}) {
    ASSERT_FALSE(curve->has_subtree_traversal()) << curve->name();
    expect_exact_covers_randomized(*curve, 17, 12);
  }
}

TEST(RangeCover, NonPowerOfTwoSidesUseFallback) {
  // Simple/snake accept any side; the cover entry point must stay exact.
  const Universe u(2, 6);
  for (CurveFamily family : {CurveFamily::kSimple, CurveFamily::kSnake}) {
    const CurvePtr curve = make_curve(family, u);
    expect_exact_covers_randomized(*curve, 18, 10);
  }
}

TEST(RangeCover, HilbertQuadrantsAreSingleIntervals) {
  // Each aligned power-of-two subcube of the Hilbert curve is one run, and
  // the descent finds it without visiting more than a root-to-node path.
  const Universe u = Universe::pow2(2, 6);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const coord_t half = u.side() / 2;
  for (coord_t qx : {coord_t{0}, half}) {
    for (coord_t qy : {coord_t{0}, half}) {
      CoverStats stats;
      const Box quadrant(
          Point{qx, qy},
          Point{static_cast<coord_t>(qx + half - 1),
                static_cast<coord_t>(qy + half - 1)});
      const auto cover = RangeCoverEngine(*h).cover(quadrant, &stats);
      ASSERT_EQ(cover.size(), 1u);
      EXPECT_EQ(cover[0].hi - cover[0].lo + 1, quadrant.cell_count());
      // Root + its 4 children, nothing deeper.
      EXPECT_LE(stats.nodes_visited, 5u);
    }
  }
}

TEST(RangeCover, HigherDimensionalHilbertStateDescent) {
  // 4D/5D exercise the d-bit rotation group of the Hilbert state descent
  // beyond what the magic-mask decode kernels special-case.
  for (int d : {4, 5}) {
    const Universe u = Universe::pow2(d, 2);
    const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
    expect_exact_covers_randomized(*h, 19 + static_cast<std::uint64_t>(d), 8);
  }
}

TEST(RangeCover, DeepUniverseAgreement) {
  // Depth-10 descent (1024^2 universe): the state composition must stay
  // exact through many levels, not just the depths the exhaustive subtree
  // tests reach.
  const Universe u = Universe::pow2(2, 10);
  Xoshiro256 rng(23);
  for (CurveFamily family :
       {CurveFamily::kHilbert, CurveFamily::kZ, CurveFamily::kGray}) {
    const CurvePtr curve = make_curve(family, u);
    for (int i = 0; i < 3; ++i) {
      const Box box = random_box(u, 64, rng);
      EXPECT_EQ(RangeCoverEngine(*curve).cover(box),
                cover_by_enumeration(*curve, box))
          << family_name(family);
    }
  }
}

TEST(RangeCover, DescentIsOutputSensitive) {
  // A thin full-width slab in a large universe: the run count is O(extent)
  // and the descent must visit O(runs · log side) nodes, far below the
  // box volume.
  const Universe u = Universe::pow2(2, 10);  // 1024 x 1024
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const Box slab(Point{0, 17}, Point{1023, 20});  // 4096 cells
  CoverStats stats;
  const auto cover = RangeCoverEngine(*h).cover(slab, &stats);
  EXPECT_TRUE(stats.used_subtree);
  EXPECT_GE(cover.size(), 1u);
  // Nodes visited must scale with the cover size, not the volume.
  EXPECT_LT(stats.nodes_visited, 64u * cover.size() + 64u);
  EXPECT_EQ(cover, cover_by_enumeration(*h, slab));
}

TEST(RangeCover, OutOfUniverseBoxThrowsTypedError) {
  const auto curve = make_curve(CurveFamily::kHilbert, Universe::pow2(2, 4));
  RangeCoverEngine engine(*curve);
  // Box corner outside the 16-cell side: a typed, recoverable error naming
  // the offending coordinate — never an abort.
  try {
    engine.cover(Box(Point{3, 3}, Point{5, 99}));
    FAIL() << "expected RangeArgumentError";
  } catch (const RangeArgumentError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("99"), std::string::npos) << what;
    EXPECT_NE(what.find("16"), std::string::npos) << what;
  }
  // Dimension mismatch is typed too.
  EXPECT_THROW(engine.cover(Box(Point{1, 1, 1}, Point{2, 2, 2})),
               RangeArgumentError);
  // RangeArgumentError is part of the unified sfc::Error hierarchy.
  EXPECT_THROW(engine.cover(Box(Point{0, 20}, Point{1, 21})), Error);
  // A valid box still answers after the failures (engine state intact).
  EXPECT_GE(engine.cover(Box(Point{0, 0}, Point{3, 3})).size(), 1u);
}

}  // namespace
}  // namespace sfc
