#include "sfc/parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sfc {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.run_batch(1000, [&](std::uint64_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  std::atomic<std::uint64_t> sum{0};
  pool.run_batch(100, [&](std::uint64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, EmptyBatchIsNoOp) {
  ThreadPool pool(2);
  pool.run_batch(0, [&](std::uint64_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ManySequentialBatches) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.run_batch(20, [&](std::uint64_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_batch(100,
                     [&](std::uint64_t i) {
                       if (i == 37) throw std::runtime_error("task failure");
                     }),
      std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> count{0};
  pool.run_batch(10, [&](std::uint64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ThreadCountReported) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  ThreadPool solo(1);
  EXPECT_EQ(solo.thread_count(), 1u);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPool, LargeTaskCount) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.run_batch(100000, [&](std::uint64_t i) {
    if (i % 9973 == 0) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 100000u / 9973u + 1);
}

}  // namespace
}  // namespace sfc
