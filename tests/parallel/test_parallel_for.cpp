#include "sfc/parallel/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

namespace sfc {
namespace {

TEST(ChunkCount, Values) {
  EXPECT_EQ(chunk_count(0, 10), 0u);
  EXPECT_EQ(chunk_count(1, 10), 1u);
  EXPECT_EQ(chunk_count(10, 10), 1u);
  EXPECT_EQ(chunk_count(11, 10), 2u);
  EXPECT_EQ(chunk_count(100, 10), 10u);
}

TEST(ParallelForChunks, CoversRangeWithoutOverlap) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1237);
  parallel_for_chunks(pool, hits.size(), 100, [&](const ChunkRange& range) {
    EXPECT_LE(range.end, hits.size());
    EXPECT_LT(range.begin, range.end);
    for (std::uint64_t i = range.begin; i < range.end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForChunks, ChunkIndicesAreSequential) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> seen(13);
  parallel_for_chunks(pool, 1250, 100, [&](const ChunkRange& range) {
    EXPECT_EQ(range.begin, range.chunk_index * 100);
    seen[range.chunk_index].fetch_add(1);
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ParallelFor, ElementwiseCoverage) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(pool, hits.size(), [&](std::uint64_t i) { hits[i].fetch_add(1); },
               64);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelReduce, IntegerSum) {
  ThreadPool pool(4);
  const std::uint64_t n = 100000;
  const std::uint64_t total = parallel_reduce<std::uint64_t>(
      pool, n, 1000, 0,
      [&](const ChunkRange& range) {
        std::uint64_t sum = 0;
        for (std::uint64_t i = range.begin; i < range.end; ++i) sum += i;
        return sum;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

// The load-bearing property: floating-point reductions are bit-identical for
// any thread count because chunk boundaries are fixed and partials are
// combined in chunk order.
TEST(ParallelReduce, DeterministicAcrossThreadCounts) {
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    return parallel_reduce<double>(
        pool, 345678, 1 << 12, 0.0,
        [&](const ChunkRange& range) {
          double sum = 0.0;
          for (std::uint64_t i = range.begin; i < range.end; ++i) {
            sum += std::sqrt(static_cast<double>(i)) * 1e-3;
          }
          return sum;
        },
        [](double a, double b) { return a + b; });
  };
  const double one = run(1);
  const double two = run(2);
  const double eight = run(8);
  // Bit-identical, not just close.
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(ParallelReduce, EmptyRangeYieldsIdentity) {
  ThreadPool pool(2);
  const int result = parallel_reduce<int>(
      pool, 0, 10, -7, [](const ChunkRange&) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(result, -7);
}

TEST(ParallelFor, GrainZeroTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  parallel_for_chunks(pool, 5, 0, [&](const ChunkRange& range) {
    EXPECT_EQ(range.end - range.begin, 1u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 5);
}

}  // namespace
}  // namespace sfc
