// The metrics registry's core contract: a snapshot is a deterministic
// integer fold of per-thread shards — bit-identical for any thread count —
// and the runtime switch makes every record a no-op.
#include "sfc/obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "sfc/common/error.h"

namespace sfc {
namespace {

/// Restores the global obs switch on scope exit so a failing test cannot
/// leak a disabled registry into the rest of the suite.
struct ObsEnabledGuard {
  explicit ObsEnabledGuard(bool enabled) : previous(obs_enabled()) {
    set_obs_enabled(enabled);
  }
  ~ObsEnabledGuard() { set_obs_enabled(previous); }
  bool previous;
};

/// Runs the same total workload split across `threads` workers against a
/// fresh registry and returns the snapshot.
MetricsSnapshot run_workload(unsigned threads) {
  MetricsRegistry registry;
  MetricsRegistry::Counter hits = registry.counter("test.hits");
  MetricsRegistry::Counter rows = registry.counter("test.rows");
  MetricsRegistry::Gauge depth = registry.gauge("test.depth");
  MetricsRegistry::Histogram wait = registry.histogram("test.wait_us");

  constexpr std::uint64_t kTotalOps = 9600;  // divisible by 1, 2, 8
  const std::uint64_t per_thread = kTotalOps / threads;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        hits.add(1);
        rows.add(3);
        // Same multiset of samples regardless of the split: the sample value
        // depends only on the global op index.
        const std::uint64_t op = t * per_thread + i;
        wait.record_us(static_cast<double>(op % 100));
      }
      depth.add(1);
    });
  }
  for (std::thread& worker : workers) worker.join();
  return registry.snapshot();
}

TEST(MetricsRegistry, SnapshotIsIdenticalAcrossThreadCounts) {
  const MetricsSnapshot one = run_workload(1);
  const MetricsSnapshot two = run_workload(2);
  const MetricsSnapshot eight = run_workload(8);

  for (const MetricsSnapshot* other : {&two, &eight}) {
    ASSERT_EQ(one.metrics.size(), other->metrics.size());
    for (std::size_t i = 0; i < one.metrics.size(); ++i) {
      const MetricValue& a = one.metrics[i];
      const MetricValue& b = other->metrics[i];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.kind, b.kind);
      if (a.kind == MetricKind::kHistogram) {
        EXPECT_EQ(a.histogram.count, b.histogram.count) << a.name;
        EXPECT_EQ(a.histogram.sum_ns, b.histogram.sum_ns) << a.name;
        EXPECT_EQ(a.histogram.buckets, b.histogram.buckets) << a.name;
      } else if (a.name != "test.depth") {
        // The gauge intentionally differs (one increment per worker).
        EXPECT_EQ(a.value, b.value) << a.name;
      }
    }
  }
  EXPECT_EQ(one.value("test.hits"), 9600);
  EXPECT_EQ(one.value("test.rows"), 3 * 9600);
  EXPECT_EQ(one.value("test.depth"), 1);
  EXPECT_EQ(eight.value("test.depth"), 8);
  ASSERT_NE(one.histogram("test.wait_us"), nullptr);
  EXPECT_EQ(one.histogram("test.wait_us")->count, 9600u);
}

TEST(MetricsRegistry, HandlesSurviveRecordingThreadExit) {
  MetricsRegistry registry;
  MetricsRegistry::Counter hits = registry.counter("test.hits");
  std::thread([&] { hits.add(7); }).join();
  std::thread([&] { hits.add(5); }).join();
  EXPECT_EQ(registry.snapshot().value("test.hits"), 12);
}

TEST(MetricsRegistry, GetOrCreateReturnsTheSameSlot) {
  MetricsRegistry registry;
  MetricsRegistry::Counter a = registry.counter("test.same");
  MetricsRegistry::Counter b = registry.counter("test.same");
  a.add(1);
  b.add(2);
  EXPECT_EQ(registry.snapshot().value("test.same"), 3);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("test.kind");
  EXPECT_THROW(registry.histogram("test.kind"), Error);
  EXPECT_THROW(registry.gauge("test.kind"), Error);
  registry.histogram("test.hist");
  EXPECT_THROW(registry.counter("test.hist"), Error);
}

TEST(MetricsRegistry, GaugeSetOverwritesAddAccumulates) {
  MetricsRegistry registry;
  MetricsRegistry::Gauge g = registry.gauge("test.gauge");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(registry.snapshot().value("test.gauge"), 7);
  g.set(100);
  EXPECT_EQ(registry.snapshot().value("test.gauge"), 100);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  MetricsRegistry::Counter hits = registry.counter("test.hits");
  MetricsRegistry::Histogram wait = registry.histogram("test.wait_us");
  hits.add(5);
  wait.record_us(10.0);
  registry.reset();
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.value("test.hits"), 0);
  ASSERT_NE(snapshot.histogram("test.wait_us"), nullptr);
  EXPECT_EQ(snapshot.histogram("test.wait_us")->count, 0u);
  // Old handles still work after reset.
  hits.add(2);
  EXPECT_EQ(registry.snapshot().value("test.hits"), 2);
}

TEST(MetricsRegistry, DisabledRecordsNothing) {
  MetricsRegistry registry;
  MetricsRegistry::Counter hits = registry.counter("test.hits");
  MetricsRegistry::Gauge depth = registry.gauge("test.depth");
  MetricsRegistry::Histogram wait = registry.histogram("test.wait_us");
  {
    ObsEnabledGuard off(false);
    hits.add(100);
    depth.set(42);
    wait.record_us(10.0);
  }
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.value("test.hits"), 0);
  EXPECT_EQ(snapshot.value("test.depth"), 0);
  EXPECT_EQ(snapshot.histogram("test.wait_us")->count, 0u);
  // Re-enabled, the same handles record again.
  hits.add(1);
  EXPECT_EQ(registry.snapshot().value("test.hits"), 1);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.counter("test.zebra");
  registry.counter("test.alpha");
  registry.histogram("test.mid_us");
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 3u);
  EXPECT_EQ(snapshot.metrics[0].name, "test.alpha");
  EXPECT_EQ(snapshot.metrics[1].name, "test.mid_us");
  EXPECT_EQ(snapshot.metrics[2].name, "test.zebra");
}

TEST(MetricsRegistry, FindAndLookupMisses) {
  MetricsRegistry registry;
  registry.counter("test.present");
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_NE(snapshot.find("test.present"), nullptr);
  EXPECT_EQ(snapshot.find("test.absent"), nullptr);
  EXPECT_EQ(snapshot.value("test.absent"), 0);
  EXPECT_EQ(snapshot.histogram("test.present"), nullptr);  // not a histogram
}

TEST(MetricsRegistry, ConcurrentRegistrationAndRecording) {
  // Registration (mutex) races recording (lock-free) and snapshotting;
  // exercised under TSAN via the obs label.
  MetricsRegistry registry;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        MetricsRegistry::Counter c =
            registry.counter("test.c" + std::to_string(i % 8));
        c.add(1);
        MetricsRegistry::Histogram h =
            registry.histogram("test.h" + std::to_string(i % 4) + "_us");
        h.record_us(static_cast<double>(t * 50 + i));
        if (i % 16 == 0) registry.snapshot();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const MetricsSnapshot snapshot = registry.snapshot();
  std::int64_t total = 0;
  for (int i = 0; i < 8; ++i) {
    total += snapshot.value("test.c" + std::to_string(i));
  }
  EXPECT_EQ(total, 4 * 50);
}

}  // namespace
}  // namespace sfc
