// End-to-end observability through the serving stack: one replay must leave
// the global registry agreeing with the server's own health counters, fill
// engine-level metrics, and mint trace spans that replay into valid Chrome
// trace JSON.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/index/point_index.h"
#include "sfc/obs/export.h"
#include "sfc/obs/metrics.h"
#include "sfc/obs/span_trace.h"
#include "sfc/rng/sampling.h"
#include "sfc/serve/server.h"
#include "sfc/serve/trace.h"
#include "json_check.h"

namespace sfc {
namespace {

struct Fixture {
  CurvePtr curve;
  std::vector<Point> points;
  PointIndex index;
  QueryTrace trace;
};

Fixture make_fixture(std::uint64_t seed) {
  CurveDescriptor descriptor;
  descriptor.family = "hilbert";
  descriptor.dim = 2;
  descriptor.side = 64;
  CurvePtr curve = make_curve(descriptor);
  const Universe u = curve->universe();
  Xoshiro256 rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < 2000; ++i) points.push_back(random_cell(u, rng));
  PointIndex index = PointIndex::build(*curve, points);
  TraceGenOptions trace_options;
  trace_options.count = 120;
  trace_options.box_extent = 6;
  trace_options.knn_k = 5;
  trace_options.seed = seed;
  QueryTrace trace = generate_trace(u, trace_options);
  return Fixture{std::move(curve), std::move(points), std::move(index),
                 std::move(trace)};
}

TEST(ServeObservability, RegistryAgreesWithServerHealth) {
  MetricsRegistry::global().reset();
  TraceRing::global().clear();
  const Fixture f = make_fixture(7);

  ServerHealth health;
  {
    IndexServer server(f.index.view(), ServerOptions{});
    ReplayOptions replay_options;
    replay_options.clients = 4;
    const ReplayReport report = replay_trace(server, f.trace, replay_options);
    EXPECT_EQ(report.accepted, f.trace.size());
    // Drain first: the dispatcher bumps health and the mirrored counters
    // after fulfilling the batch's futures, so a snapshot taken right at
    // replay return could race the final batch's accounting.
    server.stop();
    health = server.health();
  }

  const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
  // The mirrored counters and the server's own (mutex-guarded) health must
  // tell the same story.
  EXPECT_EQ(snapshot.value("serve.accepted"),
            static_cast<std::int64_t>(health.accepted));
  EXPECT_EQ(snapshot.value("serve.executed"),
            static_cast<std::int64_t>(health.executed));
  EXPECT_EQ(snapshot.value("serve.batches"),
            static_cast<std::int64_t>(health.batches_dispatched));
  const LatencyHistogram* queue_wait =
      snapshot.histogram("serve.queue_wait_us");
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_EQ(queue_wait->count, health.queue_wait_latency.count);
  EXPECT_EQ(queue_wait->buckets, health.queue_wait_latency.buckets);
  const LatencyHistogram* execute = snapshot.histogram("serve.execute_us");
  ASSERT_NE(execute, nullptr);
  EXPECT_EQ(execute->count, health.execute_latency.count);

  // Engine-level facts flowed from the same run: the mixed trace has both
  // query kinds, so both engines must have counted queries and work.
  EXPECT_GT(snapshot.value("index.range.queries"), 0);
  EXPECT_GT(snapshot.value("index.knn.queries"), 0);
  EXPECT_GT(snapshot.value("index.knn.certified"), 0);
  EXPECT_GT(snapshot.value("ranges.covers"), 0);
  EXPECT_GT(snapshot.value("index.builds"), 0);
  EXPECT_GT(snapshot.value("sort.sorts"), 0);
  EXPECT_EQ(snapshot.value("serve.range_queries") +
                snapshot.value("serve.knn_queries"),
            static_cast<std::int64_t>(f.trace.size()));
}

TEST(ServeObservability, SpansReplayIntoValidChromeTrace) {
  MetricsRegistry::global().reset();
  TraceRing::global().clear();
  const Fixture f = make_fixture(11);
  {
    IndexServer server(f.index.view(), ServerOptions{});
    ReplayOptions replay_options;
    replay_options.clients = 2;
    replay_trace(server, f.trace, replay_options);
  }
  const std::vector<TraceSpan> spans = TraceRing::global().snapshot();
  ASSERT_FALSE(spans.empty());

  bool saw_queue_wait = false;
  bool saw_engine = false;
  bool saw_batch = false;
  for (const TraceSpan& span : spans) {
    const std::string name = span.name;
    if (name == "queue_wait") {
      saw_queue_wait = true;
      EXPECT_GT(span.trace_id, 0u);  // minted at admission
    }
    if (name == "range" || name == "knn") saw_engine = true;
    if (name == "batch") saw_batch = true;
    EXPECT_GE(span.dur_us, 0.0);
  }
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_engine);
  EXPECT_TRUE(saw_batch);

  const std::string json = chrome_trace_json(spans);
  EXPECT_TRUE(sfc::testing::json_valid(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  TraceRing::global().clear();
}

TEST(ServeObservability, DisabledLeavesNoFootprint) {
  const Fixture f = make_fixture(13);
  // Reset after the fixture build: the build itself records (index, sort)
  // while obs is still enabled.
  MetricsRegistry::global().reset();
  TraceRing::global().clear();
  set_obs_enabled(false);
  {
    IndexServer server(f.index.view(), ServerOptions{});
    ReplayOptions replay_options;
    replay_options.clients = 2;
    const ReplayReport report = replay_trace(server, f.trace, replay_options);
    EXPECT_EQ(report.accepted, f.trace.size());  // serving is unaffected
  }
  set_obs_enabled(true);
  const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snapshot.value("serve.accepted"), 0);
  EXPECT_EQ(snapshot.value("index.range.queries"), 0);
  EXPECT_TRUE(TraceRing::global().snapshot().empty());
}

}  // namespace
}  // namespace sfc
