// The shared latency histogram: exact bucket edges, nearest-rank semantics,
// and deterministic merging — the single representation every subsystem's
// latency numbers flow through.
#include "sfc/obs/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sfc {
namespace {

TEST(LatencyHistogram, EmptyReportsZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.percentile_us(0.5), 0.0);
  EXPECT_EQ(h.percentile_us(0.99), 0.0);
  EXPECT_EQ(h.sum_us(), 0.0);
}

TEST(LatencyHistogram, ZeroAndNegativeLandInBucketZero) {
  LatencyHistogram h;
  h.record_us(0.0);
  h.record_us(-5.0);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum_ns, 0u);  // non-positive samples add no time
  EXPECT_EQ(h.percentile_us(0.5), 1.0);  // bucket 0 reports the 1 us edge
}

TEST(LatencyHistogram, BucketEdges) {
  // Bucket i holds samples whose ceil(us) has bit width i: 1 -> bucket 1,
  // 2 -> bucket 2, 2.5 -> ceil 3 -> bucket 2, 4 -> bucket 3.
  LatencyHistogram h;
  h.record_us(1.0);
  EXPECT_EQ(h.buckets[1], 1u);
  h.record_us(2.0);
  EXPECT_EQ(h.buckets[2], 1u);
  h.record_us(2.5);
  EXPECT_EQ(h.buckets[2], 2u);
  h.record_us(4.0);
  EXPECT_EQ(h.buckets[3], 1u);
  h.record_us(0.25);  // ceil -> 1
  EXPECT_EQ(h.buckets[1], 2u);
}

TEST(LatencyHistogram, HugeSamplesSaturateBucket31) {
  LatencyHistogram h;
  h.record_us(1.0e18);
  EXPECT_EQ(h.buckets[31], 1u);
  EXPECT_EQ(h.percentile_us(0.5), std::ldexp(1.0, 31));
  // The time sum clamps instead of overflowing llround.
  EXPECT_EQ(h.sum_ns, 9000000000000000000u);
}

TEST(LatencyHistogram, PercentileIsNearestRankUpperEdge) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record_us(3.0);    // bucket 2, edge 4
  for (int i = 0; i < 10; ++i) h.record_us(1000.0); // bucket 10, edge 1024
  EXPECT_EQ(h.percentile_us(0.5), 4.0);
  EXPECT_EQ(h.percentile_us(0.90), 4.0);
  EXPECT_EQ(h.percentile_us(0.91), 1024.0);
  EXPECT_EQ(h.percentile_us(0.99), 1024.0);
  // fraction 0 still means rank 1 (clamped), never rank 0.
  EXPECT_EQ(h.percentile_us(0.0), 4.0);
}

TEST(LatencyHistogram, SumTracksNanoseconds) {
  LatencyHistogram h;
  h.record_us(1.5);
  h.record_us(2.0);
  EXPECT_EQ(h.sum_ns, 3500u);
  EXPECT_DOUBLE_EQ(h.sum_us(), 3.5);
}

TEST(LatencyHistogram, MergeIsBucketwiseSum) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record_us(1.0);
  a.record_us(100.0);
  b.record_us(1.0);
  b.record_us(0.0);
  LatencyHistogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.buckets[0], 1u);
  EXPECT_EQ(merged.buckets[1], 2u);
  EXPECT_EQ(merged.buckets[7], 1u);  // ceil(100) has bit width 7
  EXPECT_EQ(merged.sum_ns, a.sum_ns + b.sum_ns);
}

TEST(LatencyHistogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.record_us(10.0);
  h.reset();
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.sum_ns, 0u);
  EXPECT_EQ(h.percentile_us(0.99), 0.0);
}

TEST(NearestRankPercentile, EmptyIsZero) {
  std::vector<double> empty;
  EXPECT_EQ(nearest_rank_percentile(empty, 0.99), 0.0);
}

TEST(NearestRankPercentile, ExactRanks) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_EQ(nearest_rank_percentile(v, 0.5), 3.0);   // rank ceil(2.5) = 3
  EXPECT_EQ(nearest_rank_percentile(v, 0.99), 5.0);  // rank 5
  EXPECT_EQ(nearest_rank_percentile(v, 0.2), 1.0);   // rank 1
  EXPECT_EQ(nearest_rank_percentile(v, 0.0), 1.0);   // clamped to rank 1
  EXPECT_EQ(nearest_rank_percentile(v, 1.0), 5.0);
  // The helper sorted in place — callers rely on back() being the max.
  EXPECT_EQ(v.back(), 5.0);
  EXPECT_EQ(v.front(), 1.0);
}

TEST(NearestRankPercentile, SingleSample) {
  std::vector<double> v = {7.5};
  EXPECT_EQ(nearest_rank_percentile(v, 0.5), 7.5);
  EXPECT_EQ(nearest_rank_percentile(v, 0.99), 7.5);
}

}  // namespace
}  // namespace sfc
