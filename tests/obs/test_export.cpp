// Export surfaces: the JSON document and Prometheus text exposition must be
// consumable by standard tooling — strict-parser valid, names sanitized,
// histogram series cumulative.
#include "sfc/obs/export.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sfc/obs/metrics.h"
#include "json_check.h"

namespace sfc {
namespace {

MetricsSnapshot sample_snapshot() {
  MetricsRegistry registry;
  MetricsRegistry::Counter hits = registry.counter("serve.accepted");
  MetricsRegistry::Gauge depth = registry.gauge("serve.queue_depth");
  MetricsRegistry::Histogram wait = registry.histogram("serve.queue_wait_us");
  hits.add(17);
  depth.set(-3);  // gauges may go negative; exports must not mangle the sign
  wait.record_us(0.0);
  wait.record_us(3.0);
  wait.record_us(900.0);
  return registry.snapshot();
}

TEST(MetricsJson, WellFormedAndComplete) {
  const std::string json = metrics_json(sample_snapshot());
  EXPECT_TRUE(sfc::testing::json_valid(json)) << json;
  EXPECT_NE(json.find("\"serve.accepted\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"serve.queue_depth\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"serve.queue_wait_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(MetricsJson, EmptySnapshotIsValid) {
  const std::string json = metrics_json(MetricsSnapshot{});
  EXPECT_TRUE(sfc::testing::json_valid(json)) << json;
}

TEST(MetricsPrometheus, NamesAreSanitizedAndTyped) {
  const std::string text = metrics_prometheus(sample_snapshot());
  EXPECT_NE(text.find("# TYPE sfc_serve_accepted counter"), std::string::npos);
  EXPECT_NE(text.find("sfc_serve_accepted 17"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sfc_serve_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("sfc_serve_queue_depth -3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sfc_serve_queue_wait_us histogram"),
            std::string::npos);
  // No raw dots escape into series names.
  EXPECT_EQ(text.find("serve.accepted"), std::string::npos);
}

TEST(MetricsPrometheus, HistogramSeriesIsCumulative) {
  const std::string text = metrics_prometheus(sample_snapshot());
  // 3 samples total: one at 0 us (bucket 0, folded into the first le), one
  // at 3 us (le=4), one at 900 us (le=1024).
  EXPECT_NE(text.find("sfc_serve_queue_wait_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("sfc_serve_queue_wait_us_count 3"), std::string::npos);
  EXPECT_NE(text.find("sfc_serve_queue_wait_us_sum"), std::string::npos);

  // Cumulative counts never decrease down the le ladder.
  std::istringstream lines(text);
  std::string line;
  long long previous = -1;
  while (std::getline(lines, line)) {
    if (line.rfind("sfc_serve_queue_wait_us_bucket", 0) != 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    const long long value = std::stoll(line.substr(space + 1));
    EXPECT_GE(value, previous) << line;
    previous = value;
  }
  EXPECT_EQ(previous, 3);  // the +Inf bucket saw every sample
}

}  // namespace
}  // namespace sfc
