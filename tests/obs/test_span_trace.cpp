// The span ring: bounded retention with exact oldest-first ordering and
// lifetime accounting, plus well-formed Chrome trace-event output.
#include "sfc/obs/span_trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "sfc/obs/metrics.h"
#include "json_check.h"

namespace sfc {
namespace {

TraceSpan make_span(std::uint64_t id) {
  TraceSpan span;
  span.trace_id = id;
  span.name = "unit";
  span.category = "test";
  span.start_us = static_cast<double>(id) * 10.0;
  span.dur_us = 5.0;
  span.tid = 1;
  span.add_arg("seq", id);
  return span;
}

TEST(TraceRing, EmptySnapshot) {
  const TraceRing ring(8);
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(TraceRing, RetainsInOrderBelowCapacity) {
  TraceRing ring(8);
  for (std::uint64_t i = 1; i <= 5; ++i) ring.record(make_span(i));
  const std::vector<TraceSpan> spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(spans[i].trace_id, i + 1);
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, WrapsKeepingTheMostRecent) {
  TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 11; ++i) ring.record(make_span(i));
  const std::vector<TraceSpan> spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first of the last 4: 8, 9, 10, 11.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].trace_id, 8 + i);
  }
  EXPECT_EQ(ring.recorded(), 11u);
  EXPECT_EQ(ring.dropped(), 7u);
}

TEST(TraceRing, ClearResetsRetentionButNotNothingness) {
  TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 6; ++i) ring.record(make_span(i));
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
  ring.record(make_span(42));
  const std::vector<TraceSpan> spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, 42u);
}

TEST(TraceRing, RecordAllMatchesSequentialRecords) {
  TraceRing one_by_one(4);
  TraceRing bulk(4);
  std::vector<TraceSpan> spans;
  for (std::uint64_t i = 1; i <= 6; ++i) {
    spans.push_back(make_span(i));
    one_by_one.record(spans.back());
  }
  bulk.record_all(spans);
  const std::vector<TraceSpan> a = one_by_one.snapshot();
  const std::vector<TraceSpan> b = bulk.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trace_id, b[i].trace_id);
  }
  EXPECT_EQ(bulk.recorded(), 6u);
  EXPECT_EQ(bulk.dropped(), 2u);
}

TEST(TraceRing, DisabledRecordsNothing) {
  TraceRing ring(4);
  const bool previous = obs_enabled();
  set_obs_enabled(false);
  ring.record(make_span(1));
  set_obs_enabled(previous);
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.recorded(), 0u);
}

TEST(TraceRing, ConcurrentRecordersLoseNothing) {
  TraceRing ring(1 << 12);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < 256; ++i) ring.record(make_span(i));
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(ring.recorded(), 4u * 256u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.snapshot().size(), 4u * 256u);
}

TEST(TraceSpan, ArgCapacityDropsSilently) {
  TraceSpan span;
  for (std::uint64_t i = 0; i < 12; ++i) span.add_arg("k", i);
  int used = 0;
  for (const TraceSpan::Arg& arg : span.args) {
    if (arg.key != nullptr) ++used;
  }
  EXPECT_EQ(used, 8);
  EXPECT_EQ(span.args[7].value, 7u);
}

TEST(TraceIds, MonotonicAndNonZero) {
  const std::uint64_t a = next_trace_id();
  const std::uint64_t b = next_trace_id();
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
}

TEST(ChromeTraceJson, EmptyIsValid) {
  const std::string json = chrome_trace_json({});
  EXPECT_TRUE(sfc::testing::json_valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTraceJson, SpansRenderAsCompleteEvents) {
  std::vector<TraceSpan> spans;
  spans.push_back(make_span(7));
  TraceSpan nasty;
  nasty.trace_id = 8;
  nasty.name = "quote\"back\\slash\ncontrol";
  nasty.category = "test";
  nasty.start_us = 1.25;
  nasty.dur_us = 0.5;
  nasty.add_arg("rows", 12345);
  spans.push_back(nasty);

  const std::string json = chrome_trace_json(spans);
  EXPECT_TRUE(sfc::testing::json_valid(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":12345"), std::string::npos);
  // The nasty name survived escaping, not verbatim.
  EXPECT_EQ(json.find("quote\"back"), std::string::npos);
  EXPECT_NE(json.find("quote\\\"back"), std::string::npos);
}

TEST(ChromeTraceJson, GlobalRingRoundTrip) {
  TraceRing& ring = TraceRing::global();
  ring.clear();
  TraceSpan span = make_span(99);
  ring.record(span);
  const std::string json = chrome_trace_json(ring.snapshot());
  EXPECT_TRUE(sfc::testing::json_valid(json)) << json;
  EXPECT_NE(json.find("\"trace_id\":99"), std::string::npos);
  ring.clear();
}

}  // namespace
}  // namespace sfc
