// Minimal strict JSON validator for the export-format tests: a recursive
// descent over the full RFC 8259 grammar that accepts exactly well-formed
// documents and nothing else.  No values are materialized — the tests only
// assert "a standards-compliant consumer can parse this".
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>

namespace sfc::testing {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  /// True iff the whole input is one valid JSON value (plus whitespace).
  bool valid() {
    at_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return at_ == text_.size();
  }

 private:
  bool value() {
    if (at_ >= text_.size()) return false;
    switch (text_[at_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++at_;  // '{'
    skip_ws();
    if (take('}')) return true;
    while (true) {
      skip_ws();
      if (at_ >= text_.size() || text_[at_] != '"' || !string()) return false;
      skip_ws();
      if (!take(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (take('}')) return true;
      if (!take(',')) return false;
    }
  }

  bool array() {
    ++at_;  // '['
    skip_ws();
    if (take(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (take(']')) return true;
      if (!take(',')) return false;
    }
  }

  bool string() {
    ++at_;  // '"'
    while (at_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[at_]);
      if (c == '"') {
        ++at_;
        return true;
      }
      if (c == '\\') {
        ++at_;
        if (at_ >= text_.size()) return false;
        const char esc = text_[at_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++at_;
            if (at_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[at_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
        ++at_;
        continue;
      }
      if (c < 0x20) return false;  // raw control characters are invalid
      ++at_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = at_;
    take('-');
    if (!digits()) return false;
    if (text_[start + (text_[start] == '-' ? 1 : 0)] == '0' &&
        at_ - start - (text_[start] == '-' ? 1 : 0) > 1) {
      return false;  // leading zero
    }
    if (take('.') && !digits()) return false;
    if (at_ < text_.size() && (text_[at_] == 'e' || text_[at_] == 'E')) {
      ++at_;
      if (!take('+')) take('-');
      if (!digits()) return false;
    }
    return true;
  }

  bool digits() {
    const std::size_t start = at_;
    while (at_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[at_]))) {
      ++at_;
    }
    return at_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(at_, word.size()) != word) return false;
    at_ += word.size();
    return true;
  }

  bool take(char c) {
    if (at_ < text_.size() && text_[at_] == c) {
      ++at_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\t' || text_[at_] == '\n' ||
            text_[at_] == '\r')) {
      ++at_;
    }
  }

  std::string_view text_;
  std::size_t at_ = 0;
};

inline bool json_valid(std::string_view text) {
  return JsonChecker(text).valid();
}

}  // namespace sfc::testing
