#!/usr/bin/env python3
"""Gate: instrumentation overhead on the serve hot path.

Reads the Google Benchmark JSON produced by perf_obs_overhead, finds the
paired-replay row, and fails if the serve p99 ratio (obs on / obs off)
exceeds the allowed overhead.  The bench alternates off/on replays inside
each iteration, so machine drift cancels in the ratio instead of
masquerading as instrumentation cost; this checker only has to read the
ratio the bench already computed.

  check_obs_overhead.py BENCH_obs.json
  check_obs_overhead.py BENCH_obs.json --max-overhead 0.05
"""
import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="benchmark JSON with the paired run")
    parser.add_argument(
        "--benchmark",
        default="BM_ServeObsOverheadPaired/manual_time_median",
        help="row to read (median aggregate when repetitions were used)",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.05,
        help="allowed fractional p99 overhead (0.05 = 5%%)",
    )
    args = parser.parse_args()

    with open(args.report, encoding="utf-8") as fh:
        report = json.load(fh)
    benches = report.get("benchmarks", [])
    row = next((b for b in benches if b.get("name") == args.benchmark), None)
    if row is None:
        names = ", ".join(sorted(b.get("name", "?") for b in benches))
        print(f"FAIL: benchmark {args.benchmark!r} not in {args.report} ({names})")
        return 1
    try:
        ratio = float(row["p99_ratio"])
    except (KeyError, TypeError, ValueError):
        print(f"FAIL: row {args.benchmark!r} carries no p99_ratio counter")
        return 1

    off_us = float(row.get("p99_off_us", 0.0))
    on_us = float(row.get("p99_on_us", 0.0))
    overhead = ratio - 1.0
    print(f"serve p99: obs off {off_us:,.0f} us, obs on {on_us:,.0f} us")
    print(f"overhead : {overhead * 100:+.1f}% (ceiling {args.max_overhead * 100:.0f}%)")
    if overhead > args.max_overhead:
        print("FAIL: instrumentation overhead above the allowed ceiling")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
