#!/usr/bin/env python3
"""Aggregate Google Benchmark JSON artifacts into one perf-trajectory table.

CI uploads one BENCH_*.json per bench run (encode/decode, sort, metrics
scaling, range cover, index query, nightly large-scale).  This tool flattens
any mix of those files — or directories of them, as produced by
`gh run download` — into a single table, so throughput can be tracked across
commits and scales:

  bench_trajectory.py BENCH_metrics_scaling.json BENCH_sort_keys.json
  bench_trajectory.py BENCH_range_cover.json --filter RunCountCover
  bench_trajectory.py BENCH_index_query.json --filter RangeQuery
  bench_trajectory.py downloaded-artifacts/ --format md
  bench_trajectory.py artifacts/ --filter SlabEngine --format csv

When a file contains repetition aggregates, only the `_mean` rows are kept
(pass --all-rows to keep everything); plain single-run files keep all rows.
"""
import argparse
import json
import sys
from pathlib import Path

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def collect_files(paths):
    """Expands files and directories into a sorted list of bench JSONs.

    Missing paths are warned about and skipped, not fatal: CI calls this
    with the full expected artifact list, and a gate failure earlier in the
    job legitimately leaves some files unwritten — the trajectory summary
    should still cover whatever did get produced.
    """
    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("BENCH_*.json")))
        elif path.exists():
            files.append(path)
        else:
            print(f"warning: skipping missing {raw}", file=sys.stderr)
    return files


def rows_from_report(path, keep_all):
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        # A truncated JSON (bench killed mid-write) must not take the whole
        # summary down with it.
        print(f"warning: skipping unparseable {path}: {err}", file=sys.stderr)
        return []
    date = report.get("context", {}).get("date", "")
    benches = report.get("benchmarks", [])
    has_aggregates = any(b.get("run_type") == "aggregate" for b in benches)
    rows = []
    for bench in benches:
        if has_aggregates and not keep_all:
            if bench.get("aggregate_name") != "mean":
                continue
        elif bench.get("run_type") == "aggregate" and bench.get("aggregate_name") in (
            "median",
            "stddev",
            "cv",
        ):
            continue
        time_ns = float(bench.get("real_time", 0.0)) * TIME_UNIT_NS.get(
            bench.get("time_unit", "ns"), 1.0
        )
        rows.append(
            {
                "source": path.name,
                "date": date[:19],
                "benchmark": bench.get("name", "?"),
                "real_time_ms": time_ns / 1e6,
                "items_per_second": float(bench.get("items_per_second", 0.0)),
            }
        )
    return rows


def human_rate(value):
    # Items are bench-specific: covered cells for the range-cover engine
    # (reaching T/s on nightly-scale universes), queries served for the
    # index-query benches, points for index builds.
    for scale, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if value >= scale:
            return f"{value / scale:.2f}{suffix}/s"
    return f"{value:.0f}/s" if value > 0 else "-"


def emit(rows, fmt, out):
    header = ("source", "date", "benchmark", "real_time_ms", "items_per_second")
    if fmt == "csv":
        print(",".join(header), file=out)
        for row in rows:
            print(
                f'{row["source"]},{row["date"]},{row["benchmark"]},'
                f'{row["real_time_ms"]:.3f},{row["items_per_second"]:.0f}',
                file=out,
            )
        return
    # Markdown / aligned text: humanized throughput column.
    table = [
        (
            row["source"],
            row["date"],
            row["benchmark"],
            f'{row["real_time_ms"]:.2f}',
            human_rate(row["items_per_second"]),
        )
        for row in rows
    ]
    widths = [
        max(len(header[col]), max((len(row[col]) for row in table), default=0))
        for col in range(len(header))
    ]
    if fmt == "md":
        print("| " + " | ".join(h.ljust(w) for h, w in zip(header, widths)) + " |", file=out)
        print("|" + "|".join("-" * (w + 2) for w in widths) + "|", file=out)
        for row in table:
            print("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |", file=out)
    else:
        print("  ".join(h.ljust(w) for h, w in zip(header, widths)), file=out)
        for row in table:
            print("  ".join(c.ljust(w) for c, w in zip(row, widths)), file=out)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+", help="BENCH_*.json files or directories")
    parser.add_argument("--format", choices=("table", "md", "csv"), default="table")
    parser.add_argument(
        "--filter", default="", help="keep only benchmarks whose name contains this"
    )
    parser.add_argument(
        "--all-rows",
        action="store_true",
        help="keep every repetition/aggregate row, not just the means",
    )
    args = parser.parse_args()

    rows = []
    for path in collect_files(args.paths):
        rows.extend(rows_from_report(path, args.all_rows))
    if args.filter:
        rows = [row for row in rows if args.filter in row["benchmark"]]
    if not rows:
        # Nothing usable is a warning, not an error: an empty summary must
        # not flip a CI step that only wanted best-effort reporting.
        print("warning: no benchmark rows matched", file=sys.stderr)
        return 0
    rows.sort(key=lambda row: (row["source"], row["benchmark"]))
    emit(rows, args.format, sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())
