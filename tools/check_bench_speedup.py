#!/usr/bin/env python3
"""Gate on a benchmark speedup ratio (batched codec, radix sort, ...).

Reads a Google Benchmark --benchmark_out JSON file and checks that the
candidate implementation beats its baseline by the required factor for the
given benchmark pair, e.g.

  check_bench_speedup.py BENCH_encode_decode.json \
      --scalar "BM_EncodeScalarLoop/z_d2_k10/1048576" \
      --batch "BM_EncodeBatch/z_d2_k10/1048576" \
      --min-speedup 2.0

  check_bench_speedup.py BENCH_sort_keys.json \
      --scalar "BM_StdSortKeys/1048576" \
      --batch "BM_RadixSortKeys/1048576" \
      --min-speedup 2.0

Exits non-zero (failing the CI job) when the ratio is below the floor.
"""
import argparse
import json
import sys


def items_per_second(report: dict, name: str) -> float:
    # Exact-name match: aggregate entries ("..._mean") and plain iteration
    # entries have distinct names, so the caller picks which one to gate on.
    for bench in report.get("benchmarks", []):
        if bench.get("name") == name:
            try:
                return float(bench["items_per_second"])
            except KeyError as exc:
                raise SystemExit(f"benchmark {name!r} has no items_per_second") from exc
    raise SystemExit(f"benchmark {name!r} not found in report")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="Google Benchmark JSON output file")
    parser.add_argument("--scalar", required=True, help="baseline benchmark name")
    parser.add_argument("--batch", required=True, help="candidate benchmark name")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    args = parser.parse_args()

    with open(args.report, encoding="utf-8") as fh:
        report = json.load(fh)

    scalar = items_per_second(report, args.scalar)
    batch = items_per_second(report, args.batch)
    speedup = batch / scalar if scalar > 0 else float("inf")
    print(f"scalar : {args.scalar}: {scalar:,.0f} items/s")
    print(f"batch  : {args.batch}: {batch:,.0f} items/s")
    print(f"speedup: {speedup:.2f}x (floor {args.min_speedup:.2f}x)")
    if speedup < args.min_speedup:
        print("FAIL: batched codec below required speedup", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
