// sfctool — command-line front end for the SFC-Stretch library.
//
//   sfctool analyze    --curve z --dim 2 --bits 8 [--seed 1] [--samples N]
//   sfctool render     --curve hilbert --bits 3 [--binary] [--svg out.svg]
//   sfctool sweep      --curve z --dim 2 --max-bits 8 [--csv]
//   sfctool bounds     --dim 3 --bits 4
//   sfctool partition  --curve hilbert --dim 2 --bits 6 --parts 16
//   sfctool clustering --curve z --dim 2 --bits 6 --extent 4 --samples 200
//   sfctool cover      --curve hilbert --dim 2 --bits 6 --lo 8,8 --hi 23,39
//   sfctool index-build --curve hilbert --dim 2 --bits 10 --count 100000
//   sfctool index-query --curve hilbert --dim 2 --bits 10 --count 100000
//                       --lo 8,8 --hi 23,39   (or --extent E --samples N)
//   sfctool index-knn  --curve hilbert --dim 2 --bits 10 --count 100000
//                      --query 17,33 --k 5
//   sfctool optimize   --dim 2 --side 6 --iters 100000 [--seed 1]
//
// Curve names: z, simple, snake, gray, hilbert, random, peano (render/analyze
// only; side = 3^bits for peano).
#include <cctype>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sfc/apps/nn_query.h"
#include "sfc/apps/partition.h"
#include "sfc/apps/range_query.h"
#include "sfc/cli/args.h"
#include "sfc/core/bounds.h"
#include "sfc/core/convergence.h"
#include "sfc/core/optimizer.h"
#include "sfc/core/stretch_report.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/diagonal_curve.h"
#include "sfc/curves/peano_curve.h"
#include "sfc/curves/spiral_curve.h"
#include "sfc/index/knn.h"
#include "sfc/index/point_index.h"
#include "sfc/index/range_scan.h"
#include "sfc/io/ascii_grid.h"
#include "sfc/io/svg.h"
#include "sfc/io/table.h"
#include "sfc/ranges/range_cover.h"
#include "sfc/rng/sampling.h"
#include "sfc/rng/splitmix64.h"

namespace {

using namespace sfc;

int usage(const std::string& message = "") {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      "usage: sfctool <command> [options]\n"
      "\n"
      "commands:\n"
      "  analyze    --curve NAME --dim D --bits K [--seed S] [--samples N]\n"
      "  render     --curve NAME --bits K [--binary] [--svg FILE]\n"
      "  sweep      --curve NAME --dim D --max-bits K [--csv]\n"
      "  bounds     --dim D --bits K\n"
      "  partition  --curve NAME --dim D --bits K --parts P\n"
      "  clustering --curve NAME --dim D --bits K --extent E --samples N\n"
      "  cover      --curve NAME --dim D --bits K --lo X1,..,Xd --hi Y1,..,Yd\n"
      "             [--csv]  (exact key-interval cover of the box)\n"
      "  index-build --curve NAME --dim D --bits K [--count N | --points FILE]\n"
      "             [--seed S] [--block-rows B]  (build an SFC point index)\n"
      "  index-query ...index-build flags... --lo X1,..,Xd --hi Y1,..,Yd\n"
      "             (or --extent E --samples N for random-box efficiency)\n"
      "  index-knn  ...index-build flags... --query X1,..,Xd --k K\n"
      "  optimize   --dim D --side S --iters N [--seed S]\n"
      "\n"
      "curves: z, simple, snake, gray, hilbert, random, peano, spiral,\n"
      "        diagonal (spiral/diagonal are 2-d only)\n";
  return 2;
}

/// Builds a curve by CLI name; `bits` is k (side = 2^k, or 3^k for peano).
CurvePtr build_curve(const std::string& name, int dim, int bits,
                     std::uint64_t seed, std::string* error) {
  if (name == "peano") {
    index_t side = 1;
    for (int i = 0; i < bits; ++i) side *= 3;
    return std::make_unique<PeanoCurve>(Universe(dim, static_cast<coord_t>(side)));
  }
  if (name == "spiral") {
    return std::make_unique<SpiralCurve>(Universe::pow2(2, bits));
  }
  if (name == "diagonal") {
    return std::make_unique<DiagonalCurve>(Universe::pow2(2, bits));
  }
  const std::map<std::string, CurveFamily> families = {
      {"z", CurveFamily::kZ},           {"simple", CurveFamily::kSimple},
      {"snake", CurveFamily::kSnake},   {"gray", CurveFamily::kGray},
      {"hilbert", CurveFamily::kHilbert}, {"random", CurveFamily::kRandom}};
  const auto it = families.find(name);
  if (it == families.end()) {
    *error = "unknown curve '" + name + "'";
    return nullptr;
  }
  return make_curve(it->second, Universe::pow2(dim, bits), seed);
}

int cmd_analyze(const cli::Args& args) {
  const std::string curve_name = args.get_string("curve", "z");
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 6);
  const auto seed = args.get_int("seed", 1);
  const auto samples = args.get_int("samples", 200000);
  if (!dim || !bits || !seed || !samples) return usage("bad numeric flag");
  std::string error;
  const CurvePtr curve = build_curve(curve_name, static_cast<int>(*dim),
                                     static_cast<int>(*bits),
                                     static_cast<std::uint64_t>(*seed), &error);
  if (!curve) return usage(error);
  AnalyzeOptions options;
  options.all_pairs_samples = static_cast<std::uint64_t>(*samples);
  std::cout << to_string(analyze_curve(*curve, options));
  return 0;
}

int cmd_render(const cli::Args& args) {
  const std::string curve_name = args.get_string("curve", "hilbert");
  const auto bits = args.get_int("bits", 3);
  if (!bits) return usage("bad numeric flag");
  std::string error;
  const CurvePtr curve =
      build_curve(curve_name, 2, static_cast<int>(*bits), 1, &error);
  if (!curve) return usage(error);
  if (args.get_flag("binary")) {
    if (!curve->universe().power_of_two_side()) {
      return usage("--binary requires a power-of-two side");
    }
    std::cout << render_key_grid_binary(*curve);
  } else {
    std::cout << render_key_grid(*curve);
  }
  std::cout << "\n" << render_curve_path(*curve);
  const std::string svg_path = args.get_string("svg", "");
  if (!svg_path.empty()) {
    if (write_text_file(svg_path, render_curve_svg(*curve))) {
      std::cout << "\nwrote " << svg_path << "\n";
    } else {
      std::cerr << "could not write " << svg_path << "\n";
      return 1;
    }
  }
  return 0;
}

int cmd_sweep(const cli::Args& args) {
  const std::string curve_name = args.get_string("curve", "z");
  const auto dim = args.get_int("dim", 2);
  const auto max_bits = args.get_int("max-bits", 8);
  if (!dim || !max_bits) return usage("bad numeric flag");
  const std::map<std::string, CurveFamily> families = {
      {"z", CurveFamily::kZ},           {"simple", CurveFamily::kSimple},
      {"snake", CurveFamily::kSnake},   {"gray", CurveFamily::kGray},
      {"hilbert", CurveFamily::kHilbert}, {"random", CurveFamily::kRandom}};
  const auto it = families.find(curve_name);
  if (it == families.end()) return usage("unknown curve '" + curve_name + "'");

  SweepOptions options;
  options.max_cells = index_t{1} << 24;
  const auto rows = davg_sweep(it->second, static_cast<int>(*dim), 1,
                               static_cast<int>(*max_bits), options);
  Table table({"k", "n", "Davg", "Dmax", "bound", "Davg/bound",
               "d*Davg/n^{1-1/d}"});
  for (const SweepRow& row : rows) {
    table.add_row({std::to_string(row.level_bits), Table::fmt_int(row.n),
                   Table::fmt(row.davg), Table::fmt(row.dmax),
                   Table::fmt(row.lower_bound), Table::fmt(row.ratio_to_bound, 5),
                   Table::fmt(row.normalized_davg, 5)});
  }
  if (args.get_flag("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
  }
  return 0;
}

int cmd_bounds(const cli::Args& args) {
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 6);
  if (!dim || !bits) return usage("bad numeric flag");
  const Universe u = Universe::pow2(static_cast<int>(*dim), static_cast<int>(*bits));
  std::cout << "universe: d=" << u.dim() << " side=" << u.side()
            << " n=" << u.cell_count() << "\n";
  std::cout << "Theorem 1  Davg lower bound        = "
            << bounds::davg_lower_bound(u) << "\n";
  std::cout << "Thm 2/3    Davg(Z) ~ Davg(S) ~     = "
            << bounds::davg_zs_asymptote(u) << "\n";
  std::cout << "Prop 1     Dmax lower bound        = "
            << bounds::dmax_lower_bound(u) << "\n";
  std::cout << "Prop 2     Dmax(simple), exact     = "
            << bounds::dmax_simple_exact(u) << "\n";
  std::cout << "Prop 3     all-pairs Manhattan LB  = "
            << bounds::allpairs_manhattan_lower_bound(u) << "\n";
  std::cout << "Prop 3     all-pairs Euclidean LB  = "
            << bounds::allpairs_euclidean_lower_bound(u) << "\n";
  std::cout << "Prop 4     simple Manhattan UB     = "
            << bounds::allpairs_simple_manhattan_upper_bound(u) << "\n";
  std::cout << "Lemma 2    S_A' (any bijection)    = "
            << to_string(bounds::lemma2_total_ordered_distance(u.cell_count()))
            << "\n";
  for (int i = 1; i <= u.dim(); ++i) {
    std::cout << "Lemma 5    Lambda_" << i << "(Z) exact       = "
              << to_string(bounds::lambda_z_exact(u.dim(), u.level_bits(), i))
              << "  (limit share " << bounds::lambda_z_limit(u.dim(), i) << ")\n";
  }
  return 0;
}

int cmd_partition(const cli::Args& args) {
  const std::string curve_name = args.get_string("curve", "hilbert");
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 6);
  const auto parts = args.get_int("parts", 16);
  if (!dim || !bits || !parts) return usage("bad numeric flag");
  std::string error;
  const CurvePtr curve =
      build_curve(curve_name, static_cast<int>(*dim), static_cast<int>(*bits),
                  1, &error);
  if (!curve) return usage(error);
  PartitionQuality q;
  try {
    q = evaluate_partition(*curve, static_cast<int>(*parts));
  } catch (const PartitionArgumentError& parts_error) {
    return usage(parts_error.what());
  }
  std::cout << "curve " << curve->name() << ", P=" << q.parts << ": edge cut "
            << q.edge_cut << " (" << q.cut_fraction * 100 << "% of NN pairs), "
            << "imbalance " << q.imbalance << ", fragmented blocks "
            << q.fragmented_blocks << "\n";
  return 0;
}

int cmd_clustering(const cli::Args& args) {
  const std::string curve_name = args.get_string("curve", "z");
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 6);
  const auto extent = args.get_int("extent", 4);
  const auto samples = args.get_int("samples", 200);
  if (!dim || !bits || !extent || !samples) return usage("bad numeric flag");
  std::string error;
  const CurvePtr curve =
      build_curve(curve_name, static_cast<int>(*dim), static_cast<int>(*bits),
                  1, &error);
  if (!curve) return usage(error);
  const ClusteringStats stats = random_box_clustering(
      *curve, static_cast<coord_t>(*extent),
      static_cast<std::uint64_t>(*samples), 1234);
  std::cout << "curve " << curve->name() << ", " << stats.samples << " boxes of "
            << stats.extent << "^" << *dim << " (" << stats.cells_per_box
            << " cells): mean runs " << stats.mean_runs << " +- "
            << stats.stderr_runs << ", max " << stats.max_runs << "\n";
  return 0;
}

/// Parses "3,5,7" into a Point of dimension `dim`; nullopt on any mismatch
/// (wrong arity, non-digit characters, or a coordinate exceeding coord_t).
std::optional<Point> parse_point(const std::string& text, int dim) {
  Point p = Point::zero(dim);
  std::size_t at = 0;
  for (int i = 0; i < dim; ++i) {
    // stoul would accept a leading '-' by wrapping; require plain digits.
    if (at >= text.size() || !std::isdigit(static_cast<unsigned char>(text[at]))) {
      return std::nullopt;
    }
    std::size_t used = 0;
    unsigned long long value = 0;
    try {
      value = std::stoull(text.substr(at), &used);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    if (value > std::numeric_limits<coord_t>::max()) return std::nullopt;
    p[i] = static_cast<coord_t>(value);
    at += used;
    const bool last = i == dim - 1;
    if (last ? at != text.size() : (at >= text.size() || text[at] != ',')) {
      return std::nullopt;
    }
    ++at;  // skip ','
  }
  return p;
}

int cmd_cover(const cli::Args& args) {
  const std::string curve_name = args.get_string("curve", "hilbert");
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 6);
  const std::string lo_text = args.get_string("lo", "");
  const std::string hi_text = args.get_string("hi", "");
  if (!dim || !bits) return usage("bad numeric flag");
  if (lo_text.empty() || hi_text.empty()) {
    return usage("cover requires --lo and --hi corner coordinates");
  }
  std::string error;
  const CurvePtr curve = build_curve(curve_name, static_cast<int>(*dim),
                                     static_cast<int>(*bits), 1, &error);
  if (!curve) return usage(error);
  const Universe& u = curve->universe();
  const auto lo = parse_point(lo_text, u.dim());
  const auto hi = parse_point(hi_text, u.dim());
  if (!lo || !hi) {
    return usage("--lo/--hi must be " + std::to_string(u.dim()) +
                 " comma-separated coordinates");
  }
  if (!u.contains(*lo) || !u.contains(*hi)) {
    return usage("box corners must lie inside the universe (side " +
                 std::to_string(u.side()) + ")");
  }
  for (int i = 0; i < u.dim(); ++i) {
    if ((*lo)[i] > (*hi)[i]) return usage("--lo must be <= --hi per dimension");
  }
  const Box box(*lo, *hi);
  CoverStats stats;
  const std::vector<KeyInterval> intervals =
      RangeCoverEngine(*curve).cover(box, &stats);
  Table table({"run", "key_lo", "key_hi", "length"});
  index_t covered = 0;
  for (std::size_t r = 0; r < intervals.size(); ++r) {
    const index_t length = intervals[r].hi - intervals[r].lo + 1;
    covered += length;
    table.add_row({Table::fmt_int(r), Table::fmt_int(intervals[r].lo),
                   Table::fmt_int(intervals[r].hi), Table::fmt_int(length)});
  }
  if (args.get_flag("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
  }
  std::cout << "curve " << curve->name() << ", box " << box.lo().to_string()
            << ".." << box.hi().to_string() << ": " << intervals.size()
            << " runs covering " << covered << " cells ("
            << (stats.used_subtree
                    ? "subtree descent, " + std::to_string(stats.nodes_visited) +
                          " nodes visited"
                    : std::string("enumeration fallback"))
            << ")\n";
  return 0;
}

/// Reads one point per line ("x1,x2,..,xd"; blank lines and '#' comments
/// skipped); nullopt + *error on any malformed line.
std::optional<std::vector<Point>> read_points_file(const std::string& path,
                                                   int dim, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "could not open points file '" + path + "'";
    return std::nullopt;
  }
  std::vector<Point> points;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto point = parse_point(line, dim);
    if (!point) {
      *error = path + ":" + std::to_string(line_no) + ": expected " +
               std::to_string(dim) + " comma-separated coordinates";
      return std::nullopt;
    }
    points.push_back(*point);
  }
  return points;
}

/// The dataset behind the index commands: --points FILE, or --count uniform
/// random cells drawn from the curve's universe (seeded).
std::optional<std::vector<Point>> index_dataset(const cli::Args& args,
                                                const Universe& u,
                                                std::uint64_t seed,
                                                std::string* error) {
  const std::string points_path = args.get_string("points", "");
  if (!points_path.empty()) return read_points_file(points_path, u.dim(), error);
  const auto count = args.get_int("count", 100000);
  if (!count || *count < 0) {
    *error = "bad --count";
    return std::nullopt;
  }
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(*count));
  Xoshiro256 rng(SplitMix64(seed).next());
  for (std::int64_t i = 0; i < *count; ++i) points.push_back(random_cell(u, rng));
  return points;
}

/// Builds curve + dataset + index from the shared index-command flags.
/// Returns 0 and fills the outputs, or a usage() exit code.
int build_index_setup(const cli::Args& args, CurvePtr* curve,
                      std::vector<Point>* points,
                      std::optional<PointIndex>* index) {
  const std::string curve_name = args.get_string("curve", "hilbert");
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 10);
  const auto seed = args.get_int("seed", 1);
  const auto block_rows = args.get_int("block-rows", 256);
  if (!dim || !bits || !seed || !block_rows || *block_rows <= 0) {
    return usage("bad numeric flag");
  }
  std::string error;
  *curve = build_curve(curve_name, static_cast<int>(*dim),
                       static_cast<int>(*bits),
                       static_cast<std::uint64_t>(*seed), &error);
  if (!*curve) return usage(error);
  auto dataset = index_dataset(args, (*curve)->universe(),
                               static_cast<std::uint64_t>(*seed), &error);
  if (!dataset) return usage(error);
  *points = std::move(*dataset);
  IndexBuildOptions options;
  options.block_rows = static_cast<std::uint32_t>(*block_rows);
  try {
    index->emplace(PointIndex::build(**curve, *points, options));
  } catch (const IndexArgumentError& build_error) {
    return usage(build_error.what());
  }
  return 0;
}

void print_index_summary(const PointIndex& index, std::size_t input_points) {
  const Universe& u = index.curve().universe();
  std::uint64_t distinct = 0;
  const auto keys = index.keys();
  for (std::size_t r = 0; r < keys.size(); ++r) {
    if (r == 0 || keys[r] != keys[r - 1]) ++distinct;
  }
  std::cout << "index: curve " << index.curve().name() << ", universe d="
            << u.dim() << " side=" << u.side() << " (" << u.cell_count()
            << " cells)\n";
  std::cout << "  rows " << index.row_count() << " (from " << input_points
            << " points), distinct keys " << distinct << ", duplicate rows "
            << index.row_count() - distinct << "\n";
  std::cout << "  directory: " << index.block_count() << " blocks of "
            << index.block_rows() << " rows\n";
}

int cmd_index_build(const cli::Args& args) {
  CurvePtr curve;
  std::vector<Point> points;
  std::optional<PointIndex> index;
  if (const int status = build_index_setup(args, &curve, &points, &index);
      status != 0) {
    return status;
  }
  print_index_summary(*index, points.size());
  return 0;
}

int cmd_index_query(const cli::Args& args) {
  CurvePtr curve;
  std::vector<Point> points;
  std::optional<PointIndex> index;
  if (const int status = build_index_setup(args, &curve, &points, &index);
      status != 0) {
    return status;
  }
  print_index_summary(*index, points.size());
  const Universe& u = curve->universe();

  const std::string lo_text = args.get_string("lo", "");
  const std::string hi_text = args.get_string("hi", "");
  if (!lo_text.empty() || !hi_text.empty()) {
    const auto lo = parse_point(lo_text, u.dim());
    const auto hi = parse_point(hi_text, u.dim());
    if (!lo || !hi) {
      return usage("--lo/--hi must be " + std::to_string(u.dim()) +
                   " comma-separated coordinates");
    }
    if (!u.contains(*lo) || !u.contains(*hi)) {
      return usage("box corners must lie inside the universe (side " +
                   std::to_string(u.side()) + ")");
    }
    for (int i = 0; i < u.dim(); ++i) {
      if ((*lo)[i] > (*hi)[i]) return usage("--lo must be <= --hi per dimension");
    }
    const Box box(*lo, *hi);
    RangeScanEngine engine(*index);
    std::vector<std::uint32_t> ids;
    RangeScanStats stats;
    engine.scan(box, &ids, &stats);
    std::cout << "box " << box.lo().to_string() << ".." << box.hi().to_string()
              << ": " << stats.rows_returned << " rows returned, "
              << stats.rows_scanned << " rows scanned (full scan would touch "
              << index->row_count() << "), " << stats.runs_in_cover
              << " runs in cover (" << stats.runs_touched << " touched), "
              << stats.nodes_visited << " nodes visited\n";
    return 0;
  }

  const auto extent = args.get_int("extent", 8);
  const auto samples = args.get_int("samples", 200);
  if (!extent || !samples || *extent <= 0 || *samples <= 0) {
    return usage("bad numeric flag");
  }
  if (static_cast<std::uint64_t>(*extent) > u.side()) {
    return usage("--extent must be <= the universe side");
  }
  const ScanEfficiencyStats stats = random_box_scan_efficiency(
      *index, static_cast<coord_t>(*extent),
      static_cast<std::uint64_t>(*samples), 1234);
  std::cout << stats.samples << " random boxes of " << stats.extent << "^"
            << u.dim() << ": mean rows returned " << stats.mean_rows_returned
            << ", mean rows scanned " << stats.mean_rows_scanned
            << " (full scan: " << stats.index_rows << " rows, advantage "
            << stats.full_scan_ratio << "x), mean runs " << stats.mean_runs
            << " (" << stats.mean_runs_touched << " touched)\n";
  return 0;
}

int cmd_index_knn(const cli::Args& args) {
  CurvePtr curve;
  std::vector<Point> points;
  std::optional<PointIndex> index;
  if (const int status = build_index_setup(args, &curve, &points, &index);
      status != 0) {
    return status;
  }
  print_index_summary(*index, points.size());
  const Universe& u = curve->universe();
  const std::string query_text = args.get_string("query", "");
  const auto k = args.get_int("k", 5);
  if (!k || *k <= 0) return usage("bad --k");
  const auto query = parse_point(query_text, u.dim());
  if (!query) {
    return usage("--query must be " + std::to_string(u.dim()) +
                 " comma-separated coordinates");
  }
  KnnEngine engine(*index);
  std::vector<KnnNeighbor> neighbors;
  KnnStats stats;
  try {
    neighbors = engine.query(*query, static_cast<std::uint32_t>(*k), &stats);
  } catch (const IndexArgumentError& query_error) {
    return usage(query_error.what());
  }
  Table table({"rank", "id", "point", "key", "dist"});
  for (std::size_t r = 0; r < neighbors.size(); ++r) {
    table.add_row({Table::fmt_int(r), Table::fmt_int(neighbors[r].id),
                   curve->point_at(neighbors[r].key).to_string(),
                   Table::fmt_int(neighbors[r].key),
                   Table::fmt(std::sqrt(static_cast<double>(neighbors[r].sq_dist)))});
  }
  table.print(std::cout);
  std::cout << "query " << query->to_string() << ", k=" << *k << ": "
            << neighbors.size() << " neighbors, " << stats.rows_scanned
            << " rows scanned of " << index->row_count() << ", "
            << stats.nodes_expanded << " nodes expanded, "
            << (stats.certified ? "certified exact" : "NOT certified")
            << (stats.used_subtree ? "" : " (exhaustive fallback)") << "\n";
  return 0;
}

int cmd_optimize(const cli::Args& args) {
  const auto dim = args.get_int("dim", 2);
  const auto side = args.get_int("side", 6);
  const auto iters = args.get_int("iters", 100000);
  const auto seed = args.get_int("seed", 1);
  if (!dim || !side || !iters || !seed) return usage("bad numeric flag");
  const Universe u(static_cast<int>(*dim), static_cast<coord_t>(*side));
  OptimizeOptions options;
  options.iterations = static_cast<std::uint64_t>(*iters);
  options.seed = static_cast<std::uint64_t>(*seed);
  const OptimizeResult result = optimize_davg(u, {}, options);
  std::cout << "local search on d=" << u.dim() << " side=" << u.side()
            << " (n=" << u.cell_count() << "), " << result.iterations
            << " iterations:\n";
  std::cout << "  start Davg (row-major) = " << result.initial_davg << "\n";
  std::cout << "  best Davg found        = " << result.best_davg << "\n";
  std::cout << "  Theorem-1 lower bound  = " << bounds::davg_lower_bound(u)
            << "\n";
  std::cout << "  best/bound             = "
            << result.best_davg / bounds::davg_lower_bound(u) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  const cli::Args args = cli::Args::parse(tokens);
  if (!args.valid()) return usage(args.error());

  const std::string& command = args.subcommand();
  int status;
  if (command == "analyze") {
    status = cmd_analyze(args);
  } else if (command == "render") {
    status = cmd_render(args);
  } else if (command == "sweep") {
    status = cmd_sweep(args);
  } else if (command == "bounds") {
    status = cmd_bounds(args);
  } else if (command == "partition") {
    status = cmd_partition(args);
  } else if (command == "clustering") {
    status = cmd_clustering(args);
  } else if (command == "cover") {
    status = cmd_cover(args);
  } else if (command == "index-build") {
    status = cmd_index_build(args);
  } else if (command == "index-query") {
    status = cmd_index_query(args);
  } else if (command == "index-knn") {
    status = cmd_index_knn(args);
  } else if (command == "optimize") {
    status = cmd_optimize(args);
  } else {
    return usage(command.empty() ? "missing command"
                                 : "unknown command '" + command + "'");
  }
  if (status == 0) {
    const auto unused = args.unused_keys();
    if (!unused.empty()) {
      std::cerr << "warning: unused flag(s):";
      for (const auto& key : unused) std::cerr << " --" << key;
      std::cerr << "\n";
    }
  }
  return status;
}
