// sfctool — command-line front end for the SFC-Stretch library.
//
// Subcommands are declared in a dispatch table (name, summary, flag specs,
// handler); the table drives dispatch, the top-level listing, per-command
// `--help`, and strict flag validation — a flag not in the command's spec is
// an error, not a silent no-op.  Run `sfctool help` for the list and
// `sfctool <command> --help` for any command's flags.
//
// Library errors (sfc::Error and its subtypes: curve construction, index
// arguments, on-disk store validation, trace parsing) are caught at the tool
// boundary and reported as `error: ...` with exit status 1; usage errors exit
// with status 2.
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sfc/apps/nn_query.h"
#include "sfc/apps/partition.h"
#include "sfc/apps/range_query.h"
#include "sfc/cli/args.h"
#include "sfc/common/error.h"
#include "sfc/core/bounds.h"
#include "sfc/core/convergence.h"
#include "sfc/core/optimizer.h"
#include "sfc/core/stretch_report.h"
#include "sfc/curves/curve_error.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/index/executor.h"
#include "sfc/index/knn.h"
#include "sfc/index/point_index.h"
#include "sfc/index/range_scan.h"
#include "sfc/io/ascii_grid.h"
#include "sfc/io/svg.h"
#include "sfc/io/table.h"
#include "sfc/obs/export.h"
#include "sfc/obs/metrics.h"
#include "sfc/obs/span_trace.h"
#include "sfc/ranges/range_cover.h"
#include "sfc/rng/sampling.h"
#include "sfc/rng/splitmix64.h"
#include "sfc/serve/chaos.h"
#include "sfc/serve/server.h"
#include "sfc/serve/sharded_index.h"
#include "sfc/serve/trace.h"
#include "sfc/store/fault_inject.h"
#include "sfc/store/index_store.h"

namespace {

using namespace sfc;

// ---------------------------------------------------------------------------
// Dispatch table scaffolding
// ---------------------------------------------------------------------------

struct FlagSpec {
  const char* flag;   ///< flag name without the leading "--"
  const char* value;  ///< value placeholder, "" for bare flags
  const char* help;
};

struct Command {
  const char* name;
  const char* summary;
  std::vector<FlagSpec> flags;
  int (*run)(const Command& cmd, const cli::Args& args);
};

const std::vector<Command>& command_table();

int usage_all(const std::string& message) {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::ostream& out = message.empty() ? std::cout : std::cerr;
  out << "usage: sfctool <command> [options]\n\ncommands:\n";
  for (const Command& cmd : command_table()) {
    out << "  " << cmd.name;
    for (std::size_t i = std::string(cmd.name).size(); i < 12; ++i) out << ' ';
    out << cmd.summary << "\n";
  }
  out << "\nrun 'sfctool <command> --help' for the command's flags\n"
      << "curves: z, simple, snake, gray, hilbert, random, peano, spiral,\n"
      << "        diagonal (spiral/diagonal are 2-d only; peano side = 3^bits)\n";
  return message.empty() ? 0 : 2;
}

int usage_command(const Command& cmd, const std::string& message = "") {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::ostream& out = message.empty() ? std::cout : std::cerr;
  out << "usage: sfctool " << cmd.name << " [options]\n  " << cmd.summary
      << "\n\noptions:\n";
  for (const FlagSpec& spec : cmd.flags) {
    std::string head = std::string("--") + spec.flag;
    if (spec.value[0] != '\0') head += std::string(" ") + spec.value;
    out << "  " << head;
    for (std::size_t i = head.size(); i < 22; ++i) out << ' ';
    out << spec.help << "\n";
  }
  return message.empty() ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Maps the CLI flags (name, dim, bits, seed) to the serializable curve
/// identity; side = 2^bits, or 3^bits for peano.
std::optional<CurveDescriptor> descriptor_for(const std::string& name, int dim,
                                              int bits, std::uint64_t seed,
                                              std::string* error) {
  if (bits < 0 || bits > 31) {
    *error = "--bits must be in [0, 31]";
    return std::nullopt;
  }
  std::uint64_t side = 1;
  const std::uint64_t base = name == "peano" ? 3 : 2;
  for (int i = 0; i < bits; ++i) side *= base;
  if (side > std::numeric_limits<coord_t>::max()) {
    *error = "side " + std::to_string(side) + " exceeds the coordinate range";
    return std::nullopt;
  }
  CurveDescriptor descriptor;
  descriptor.family = name;
  descriptor.dim = dim;
  descriptor.side = static_cast<coord_t>(side);
  descriptor.seed = seed;
  return descriptor;
}

/// Builds a curve by CLI name; `bits` is k (side = 2^k, or 3^k for peano).
CurvePtr build_curve(const std::string& name, int dim, int bits,
                     std::uint64_t seed, std::string* error,
                     CurveDescriptor* descriptor_out = nullptr) {
  const auto descriptor = descriptor_for(name, dim, bits, seed, error);
  if (!descriptor) return nullptr;
  try {
    CurvePtr curve = make_curve(*descriptor);
    if (descriptor_out != nullptr) *descriptor_out = *descriptor;
    return curve;
  } catch (const CurveArgumentError& curve_error) {
    *error = curve_error.what();
    return nullptr;
  }
}

/// Parses "3,5,7" into a Point of dimension `dim`; nullopt on any mismatch
/// (wrong arity, non-digit characters, or a coordinate exceeding coord_t).
std::optional<Point> parse_point(const std::string& text, int dim) {
  Point p = Point::zero(dim);
  std::size_t at = 0;
  for (int i = 0; i < dim; ++i) {
    // stoul would accept a leading '-' by wrapping; require plain digits.
    if (at >= text.size() || !std::isdigit(static_cast<unsigned char>(text[at]))) {
      return std::nullopt;
    }
    std::size_t used = 0;
    unsigned long long value = 0;
    try {
      value = std::stoull(text.substr(at), &used);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    if (value > std::numeric_limits<coord_t>::max()) return std::nullopt;
    p[i] = static_cast<coord_t>(value);
    at += used;
    const bool last = i == dim - 1;
    if (last ? at != text.size() : (at >= text.size() || text[at] != ',')) {
      return std::nullopt;
    }
    ++at;  // skip ','
  }
  return p;
}

/// Reads one point per line ("x1,x2,..,xd"; blank lines and '#' comments
/// skipped); nullopt + *error on any malformed line.
std::optional<std::vector<Point>> read_points_file(const std::string& path,
                                                   int dim, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "could not open points file '" + path + "'";
    return std::nullopt;
  }
  std::vector<Point> points;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto point = parse_point(line, dim);
    if (!point) {
      *error = path + ":" + std::to_string(line_no) + ": expected " +
               std::to_string(dim) + " comma-separated coordinates";
      return std::nullopt;
    }
    points.push_back(*point);
  }
  return points;
}

/// The dataset behind the index commands: --points FILE, or --count uniform
/// random cells drawn from the curve's universe (seeded).
std::optional<std::vector<Point>> index_dataset(const cli::Args& args,
                                                const Universe& u,
                                                std::uint64_t seed,
                                                std::string* error) {
  const std::string points_path = args.get_string("points", "");
  if (!points_path.empty()) return read_points_file(points_path, u.dim(), error);
  const auto count = args.get_int("count", 100000);
  if (!count || *count < 0) {
    *error = "bad --count";
    return std::nullopt;
  }
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(*count));
  Xoshiro256 rng(SplitMix64(seed).next());
  for (std::int64_t i = 0; i < *count; ++i) points.push_back(random_cell(u, rng));
  return points;
}

/// Builds curve + dataset + index from the shared index-command flags.
/// Returns 0 and fills the outputs, or a usage exit code.
int build_index_setup(const Command& cmd, const cli::Args& args,
                      CurvePtr* curve, std::vector<Point>* points,
                      std::optional<PointIndex>* index,
                      CurveDescriptor* descriptor = nullptr) {
  const std::string curve_name = args.get_string("curve", "hilbert");
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 10);
  const auto seed = args.get_int("seed", 1);
  const auto block_rows = args.get_int("block-rows", 256);
  if (!dim || !bits || !seed || !block_rows || *block_rows <= 0) {
    return usage_command(cmd, "bad numeric flag");
  }
  std::string error;
  *curve = build_curve(curve_name, static_cast<int>(*dim),
                       static_cast<int>(*bits),
                       static_cast<std::uint64_t>(*seed), &error, descriptor);
  if (!*curve) return usage_command(cmd, error);
  auto dataset = index_dataset(args, (*curve)->universe(),
                               static_cast<std::uint64_t>(*seed), &error);
  if (!dataset) return usage_command(cmd, error);
  *points = std::move(*dataset);
  IndexBuildOptions options;
  options.block_rows = static_cast<std::uint32_t>(*block_rows);
  try {
    index->emplace(PointIndex::build(**curve, *points, options));
  } catch (const IndexArgumentError& build_error) {
    return usage_command(cmd, build_error.what());
  }
  return 0;
}

void print_index_summary(const PointIndex& index, std::size_t input_points) {
  const Universe& u = index.curve().universe();
  std::uint64_t distinct = 0;
  const auto keys = index.keys();
  for (std::size_t r = 0; r < keys.size(); ++r) {
    if (r == 0 || keys[r] != keys[r - 1]) ++distinct;
  }
  std::cout << "index: curve " << index.curve().name() << ", universe d="
            << u.dim() << " side=" << u.side() << " (" << u.cell_count()
            << " cells)\n";
  std::cout << "  rows " << index.row_count() << " (from " << input_points
            << " points), distinct keys " << distinct << ", duplicate rows "
            << index.row_count() - distinct << "\n";
  std::cout << "  directory: " << index.block_count() << " blocks of "
            << index.block_rows() << " rows\n";
}

/// Index storage behind the serving-side commands: either built in memory
/// from the shared index flags or mmapped from --file.  Whichever way, the
/// commands query through `view` only.
struct IndexSource {
  CurvePtr curve;                    // owned path
  std::vector<Point> points;         // owned path
  std::optional<PointIndex> owned;   // owned path
  std::optional<MappedIndex> mapped; // --file path
  IndexColumnsView view;
  bool from_file = false;
};

int open_index_source(const Command& cmd, const cli::Args& args,
                      IndexSource* source, bool round_trip_store = false) {
  const std::string file = args.get_string("file", "");
  if (!file.empty()) {
    source->mapped.emplace(MappedIndex::open(file));
    source->view = source->mapped->view();
    source->from_file = true;
    std::cout << "index: mapped " << file << " ("
              << source->mapped->file_bytes() << " bytes, "
              << source->mapped->row_count() << " rows, curve "
              << source->mapped->descriptor().to_string() << ")\n";
    return 0;
  }
  CurveDescriptor descriptor;
  if (const int status = build_index_setup(cmd, args, &source->curve,
                                           &source->points, &source->owned,
                                           &descriptor);
      status != 0) {
    return status;
  }
  source->view = source->owned->view();
  print_index_summary(*source->owned, source->points.size());
  if (round_trip_store) {
    // Round-trip the in-memory build through the on-disk format so one run
    // exercises the writer, the mmap reader, and its verification pass.  The
    // path is unlinked immediately; the mapping keeps the bytes alive.
    const std::string tmp_path =
        "/tmp/sfctool-serve-" + std::to_string(::getpid()) + ".sfcidx";
    write_index_file(tmp_path, *source->owned, descriptor);
    source->mapped.emplace(MappedIndex::open(tmp_path));
    std::remove(tmp_path.c_str());
    source->view = source->mapped->view();
    source->owned.reset();
    source->points.clear();
    source->points.shrink_to_fit();
    std::cout << "index: round-tripped through the v1 store format ("
              << source->mapped->file_bytes() << " bytes)\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

int cmd_analyze(const Command& cmd, const cli::Args& args) {
  const std::string curve_name = args.get_string("curve", "z");
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 6);
  const auto seed = args.get_int("seed", 1);
  const auto samples = args.get_int("samples", 200000);
  if (!dim || !bits || !seed || !samples) return usage_command(cmd, "bad numeric flag");
  std::string error;
  const CurvePtr curve = build_curve(curve_name, static_cast<int>(*dim),
                                     static_cast<int>(*bits),
                                     static_cast<std::uint64_t>(*seed), &error);
  if (!curve) return usage_command(cmd, error);
  AnalyzeOptions options;
  options.all_pairs_samples = static_cast<std::uint64_t>(*samples);
  std::cout << to_string(analyze_curve(*curve, options));
  return 0;
}

int cmd_render(const Command& cmd, const cli::Args& args) {
  const std::string curve_name = args.get_string("curve", "hilbert");
  const auto bits = args.get_int("bits", 3);
  if (!bits) return usage_command(cmd, "bad numeric flag");
  std::string error;
  const CurvePtr curve =
      build_curve(curve_name, 2, static_cast<int>(*bits), 1, &error);
  if (!curve) return usage_command(cmd, error);
  if (args.get_flag("binary")) {
    if (!curve->universe().power_of_two_side()) {
      return usage_command(cmd, "--binary requires a power-of-two side");
    }
    std::cout << render_key_grid_binary(*curve);
  } else {
    std::cout << render_key_grid(*curve);
  }
  std::cout << "\n" << render_curve_path(*curve);
  const std::string svg_path = args.get_string("svg", "");
  if (!svg_path.empty()) {
    if (write_text_file(svg_path, render_curve_svg(*curve))) {
      std::cout << "\nwrote " << svg_path << "\n";
    } else {
      std::cerr << "could not write " << svg_path << "\n";
      return 1;
    }
  }
  return 0;
}

int cmd_sweep(const Command& cmd, const cli::Args& args) {
  const std::string curve_name = args.get_string("curve", "z");
  const auto dim = args.get_int("dim", 2);
  const auto max_bits = args.get_int("max-bits", 8);
  if (!dim || !max_bits) return usage_command(cmd, "bad numeric flag");
  const std::map<std::string, CurveFamily> families = {
      {"z", CurveFamily::kZ},           {"simple", CurveFamily::kSimple},
      {"snake", CurveFamily::kSnake},   {"gray", CurveFamily::kGray},
      {"hilbert", CurveFamily::kHilbert}, {"random", CurveFamily::kRandom}};
  const auto it = families.find(curve_name);
  if (it == families.end()) {
    return usage_command(cmd, "unknown curve '" + curve_name + "'");
  }

  SweepOptions options;
  options.max_cells = index_t{1} << 24;
  const auto rows = davg_sweep(it->second, static_cast<int>(*dim), 1,
                               static_cast<int>(*max_bits), options);
  Table table({"k", "n", "Davg", "Dmax", "bound", "Davg/bound",
               "d*Davg/n^{1-1/d}"});
  for (const SweepRow& row : rows) {
    table.add_row({std::to_string(row.level_bits), Table::fmt_int(row.n),
                   Table::fmt(row.davg), Table::fmt(row.dmax),
                   Table::fmt(row.lower_bound), Table::fmt(row.ratio_to_bound, 5),
                   Table::fmt(row.normalized_davg, 5)});
  }
  if (args.get_flag("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
  }
  return 0;
}

int cmd_bounds(const Command& cmd, const cli::Args& args) {
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 6);
  if (!dim || !bits) return usage_command(cmd, "bad numeric flag");
  const Universe u = Universe::pow2(static_cast<int>(*dim), static_cast<int>(*bits));
  std::cout << "universe: d=" << u.dim() << " side=" << u.side()
            << " n=" << u.cell_count() << "\n";
  std::cout << "Theorem 1  Davg lower bound        = "
            << bounds::davg_lower_bound(u) << "\n";
  std::cout << "Thm 2/3    Davg(Z) ~ Davg(S) ~     = "
            << bounds::davg_zs_asymptote(u) << "\n";
  std::cout << "Prop 1     Dmax lower bound        = "
            << bounds::dmax_lower_bound(u) << "\n";
  std::cout << "Prop 2     Dmax(simple), exact     = "
            << bounds::dmax_simple_exact(u) << "\n";
  std::cout << "Prop 3     all-pairs Manhattan LB  = "
            << bounds::allpairs_manhattan_lower_bound(u) << "\n";
  std::cout << "Prop 3     all-pairs Euclidean LB  = "
            << bounds::allpairs_euclidean_lower_bound(u) << "\n";
  std::cout << "Prop 4     simple Manhattan UB     = "
            << bounds::allpairs_simple_manhattan_upper_bound(u) << "\n";
  std::cout << "Lemma 2    S_A' (any bijection)    = "
            << to_string(bounds::lemma2_total_ordered_distance(u.cell_count()))
            << "\n";
  for (int i = 1; i <= u.dim(); ++i) {
    std::cout << "Lemma 5    Lambda_" << i << "(Z) exact       = "
              << to_string(bounds::lambda_z_exact(u.dim(), u.level_bits(), i))
              << "  (limit share " << bounds::lambda_z_limit(u.dim(), i) << ")\n";
  }
  return 0;
}

int cmd_partition(const Command& cmd, const cli::Args& args) {
  const std::string curve_name = args.get_string("curve", "hilbert");
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 6);
  const auto parts = args.get_int("parts", 16);
  if (!dim || !bits || !parts) return usage_command(cmd, "bad numeric flag");
  std::string error;
  const CurvePtr curve =
      build_curve(curve_name, static_cast<int>(*dim), static_cast<int>(*bits),
                  1, &error);
  if (!curve) return usage_command(cmd, error);
  PartitionQuality q;
  try {
    q = evaluate_partition(*curve, static_cast<int>(*parts));
  } catch (const PartitionArgumentError& parts_error) {
    return usage_command(cmd, parts_error.what());
  }
  std::cout << "curve " << curve->name() << ", P=" << q.parts << ": edge cut "
            << q.edge_cut << " (" << q.cut_fraction * 100 << "% of NN pairs), "
            << "imbalance " << q.imbalance << ", fragmented blocks "
            << q.fragmented_blocks << "\n";
  return 0;
}

int cmd_clustering(const Command& cmd, const cli::Args& args) {
  const std::string curve_name = args.get_string("curve", "z");
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 6);
  const auto extent = args.get_int("extent", 4);
  const auto samples = args.get_int("samples", 200);
  if (!dim || !bits || !extent || !samples) {
    return usage_command(cmd, "bad numeric flag");
  }
  std::string error;
  const CurvePtr curve =
      build_curve(curve_name, static_cast<int>(*dim), static_cast<int>(*bits),
                  1, &error);
  if (!curve) return usage_command(cmd, error);
  const ClusteringStats stats = random_box_clustering(
      *curve, static_cast<coord_t>(*extent),
      static_cast<std::uint64_t>(*samples), 1234);
  std::cout << "curve " << curve->name() << ", " << stats.samples << " boxes of "
            << stats.extent << "^" << *dim << " (" << stats.cells_per_box
            << " cells): mean runs " << stats.mean_runs << " +- "
            << stats.stderr_runs << ", max " << stats.max_runs << "\n";
  return 0;
}

int cmd_cover(const Command& cmd, const cli::Args& args) {
  const std::string curve_name = args.get_string("curve", "hilbert");
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 6);
  const std::string lo_text = args.get_string("lo", "");
  const std::string hi_text = args.get_string("hi", "");
  if (!dim || !bits) return usage_command(cmd, "bad numeric flag");
  if (lo_text.empty() || hi_text.empty()) {
    return usage_command(cmd, "cover requires --lo and --hi corner coordinates");
  }
  std::string error;
  const CurvePtr curve = build_curve(curve_name, static_cast<int>(*dim),
                                     static_cast<int>(*bits), 1, &error);
  if (!curve) return usage_command(cmd, error);
  const Universe& u = curve->universe();
  const auto lo = parse_point(lo_text, u.dim());
  const auto hi = parse_point(hi_text, u.dim());
  if (!lo || !hi) {
    return usage_command(cmd, "--lo/--hi must be " + std::to_string(u.dim()) +
                         " comma-separated coordinates");
  }
  if (!u.contains(*lo) || !u.contains(*hi)) {
    return usage_command(cmd, "box corners must lie inside the universe (side " +
                         std::to_string(u.side()) + ")");
  }
  for (int i = 0; i < u.dim(); ++i) {
    if ((*lo)[i] > (*hi)[i]) {
      return usage_command(cmd, "--lo must be <= --hi per dimension");
    }
  }
  const Box box(*lo, *hi);
  CoverStats stats;
  const std::vector<KeyInterval> intervals =
      RangeCoverEngine(*curve).cover(box, &stats);
  Table table({"run", "key_lo", "key_hi", "length"});
  index_t covered = 0;
  for (std::size_t r = 0; r < intervals.size(); ++r) {
    const index_t length = intervals[r].hi - intervals[r].lo + 1;
    covered += length;
    table.add_row({Table::fmt_int(r), Table::fmt_int(intervals[r].lo),
                   Table::fmt_int(intervals[r].hi), Table::fmt_int(length)});
  }
  if (args.get_flag("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
  }
  std::cout << "curve " << curve->name() << ", box " << box.lo().to_string()
            << ".." << box.hi().to_string() << ": " << intervals.size()
            << " runs covering " << covered << " cells ("
            << (stats.used_subtree
                    ? "subtree descent, " + std::to_string(stats.nodes_visited) +
                          " nodes visited"
                    : std::string("enumeration fallback"))
            << ")\n";
  return 0;
}

int cmd_index_build(const Command& cmd, const cli::Args& args) {
  CurvePtr curve;
  std::vector<Point> points;
  std::optional<PointIndex> index;
  if (const int status = build_index_setup(cmd, args, &curve, &points, &index);
      status != 0) {
    return status;
  }
  print_index_summary(*index, points.size());
  return 0;
}

int cmd_index_write(const Command& cmd, const cli::Args& args) {
  const std::string out = args.get_string("out", "");
  if (out.empty()) return usage_command(cmd, "index-write requires --out FILE");
  CurvePtr curve;
  std::vector<Point> points;
  std::optional<PointIndex> index;
  CurveDescriptor descriptor;
  if (const int status =
          build_index_setup(cmd, args, &curve, &points, &index, &descriptor);
      status != 0) {
    return status;
  }
  print_index_summary(*index, points.size());
  write_index_file(out, *index, descriptor);
  // Round-trip through the reader so "wrote" also means "reopens clean".
  const MappedIndex mapped = MappedIndex::open(out);
  std::cout << "wrote " << out << ": " << mapped.file_bytes()
            << " bytes, reopened and verified (" << mapped.descriptor().to_string()
            << ", " << mapped.row_count() << " rows)\n";
  return 0;
}

int cmd_index_query(const Command& cmd, const cli::Args& args) {
  IndexSource source;
  if (const int status = open_index_source(cmd, args, &source); status != 0) {
    return status;
  }
  const IndexColumnsView& view = source.view;
  const Universe& u = view.curve().universe();

  const std::string lo_text = args.get_string("lo", "");
  const std::string hi_text = args.get_string("hi", "");
  if (!lo_text.empty() || !hi_text.empty()) {
    const auto lo = parse_point(lo_text, u.dim());
    const auto hi = parse_point(hi_text, u.dim());
    if (!lo || !hi) {
      return usage_command(cmd, "--lo/--hi must be " + std::to_string(u.dim()) +
                           " comma-separated coordinates");
    }
    if (!u.contains(*lo) || !u.contains(*hi)) {
      return usage_command(cmd,
                           "box corners must lie inside the universe (side " +
                               std::to_string(u.side()) + ")");
    }
    for (int i = 0; i < u.dim(); ++i) {
      if ((*lo)[i] > (*hi)[i]) {
        return usage_command(cmd, "--lo must be <= --hi per dimension");
      }
    }
    const Box box(*lo, *hi);
    RangeScanEngine engine(view);
    std::vector<std::uint32_t> ids;
    RangeScanStats stats;
    engine.scan(box, &ids, &stats);
    std::cout << "box " << box.lo().to_string() << ".." << box.hi().to_string()
              << ": " << stats.rows_returned << " rows returned, "
              << stats.rows_scanned << " rows scanned (full scan would touch "
              << view.row_count() << "), " << stats.runs_in_cover
              << " runs in cover (" << stats.runs_touched << " touched), "
              << stats.nodes_visited << " nodes visited\n";
    return 0;
  }

  if (source.from_file) {
    return usage_command(cmd,
                         "--file serves --lo/--hi point queries; random-box "
                         "sampling needs the in-memory build flags");
  }
  const auto extent = args.get_int("extent", 8);
  const auto samples = args.get_int("samples", 200);
  if (!extent || !samples || *extent <= 0 || *samples <= 0) {
    return usage_command(cmd, "bad numeric flag");
  }
  if (static_cast<std::uint64_t>(*extent) > u.side()) {
    return usage_command(cmd, "--extent must be <= the universe side");
  }
  const ScanEfficiencyStats stats = random_box_scan_efficiency(
      *source.owned, static_cast<coord_t>(*extent),
      static_cast<std::uint64_t>(*samples), 1234);
  std::cout << stats.samples << " random boxes of " << stats.extent << "^"
            << u.dim() << ": mean rows returned " << stats.mean_rows_returned
            << ", mean rows scanned " << stats.mean_rows_scanned
            << " (full scan: " << stats.index_rows << " rows, advantage "
            << stats.full_scan_ratio << "x), mean runs " << stats.mean_runs
            << " (" << stats.mean_runs_touched << " touched)\n";
  return 0;
}

int cmd_index_knn(const Command& cmd, const cli::Args& args) {
  IndexSource source;
  if (const int status = open_index_source(cmd, args, &source); status != 0) {
    return status;
  }
  const IndexColumnsView& view = source.view;
  const Universe& u = view.curve().universe();
  const std::string query_text = args.get_string("query", "");
  const auto k = args.get_int("k", 5);
  if (!k || *k <= 0) return usage_command(cmd, "bad --k");
  const auto query = parse_point(query_text, u.dim());
  if (!query) {
    return usage_command(cmd, "--query must be " + std::to_string(u.dim()) +
                         " comma-separated coordinates");
  }
  KnnEngine engine(view);
  std::vector<KnnNeighbor> neighbors;
  KnnStats stats;
  try {
    neighbors = engine.query(*query, static_cast<std::uint32_t>(*k), &stats);
  } catch (const IndexArgumentError& query_error) {
    return usage_command(cmd, query_error.what());
  }
  Table table({"rank", "id", "point", "key", "dist"});
  for (std::size_t r = 0; r < neighbors.size(); ++r) {
    table.add_row({Table::fmt_int(r), Table::fmt_int(neighbors[r].id),
                   view.curve().point_at(neighbors[r].key).to_string(),
                   Table::fmt_int(neighbors[r].key),
                   Table::fmt(std::sqrt(static_cast<double>(neighbors[r].sq_dist)))});
  }
  table.print(std::cout);
  std::cout << "query " << query->to_string() << ", k=" << *k << ": "
            << neighbors.size() << " neighbors, " << stats.rows_scanned
            << " rows scanned of " << view.row_count() << ", "
            << stats.nodes_expanded << " nodes expanded, "
            << (stats.certified ? "certified exact" : "NOT certified")
            << (stats.used_subtree ? "" : " (exhaustive fallback)") << "\n";
  return 0;
}

int cmd_trace_gen(const Command& cmd, const cli::Args& args) {
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 10);
  const auto count = args.get_int("count", 1000);
  const auto extent = args.get_int("extent", 32);
  const auto knn_k = args.get_int("knn-k", 8);
  const auto knn_percent = args.get_int("knn-percent", 50);
  const auto seed = args.get_int("seed", 1);
  const std::string out = args.get_string("out", "");
  if (!dim || !bits || !count || !extent || !knn_k || !knn_percent || !seed) {
    return usage_command(cmd, "bad numeric flag");
  }
  if (out.empty()) return usage_command(cmd, "trace-gen requires --out FILE");
  if (*dim < 1 || *dim > kMaxDim) {
    return usage_command(cmd, "--dim must be in [1, " +
                         std::to_string(kMaxDim) + "]");
  }
  if (*bits < 0 || *bits > 31) {
    return usage_command(cmd, "--bits must be in [0, 31]");
  }
  if (*count < 1 || *extent < 1 || *knn_k < 1 || *knn_percent < 0 ||
      *knn_percent > 100) {
    return usage_command(cmd, "bad numeric flag");
  }
  const Universe u = Universe::pow2(static_cast<int>(*dim),
                                    static_cast<int>(*bits));
  TraceGenOptions options;
  options.count = static_cast<std::uint64_t>(*count);
  options.box_extent = static_cast<std::uint32_t>(*extent);
  options.knn_k = static_cast<std::uint32_t>(*knn_k);
  options.knn_percent = static_cast<std::uint32_t>(*knn_percent);
  options.seed = static_cast<std::uint64_t>(*seed);
  const QueryTrace trace = generate_trace(u, options);
  write_trace_file(out, trace);
  std::cout << "wrote " << out << ": " << trace.size() << " queries ("
            << trace.range_count() << " range of extent " << *extent << ", "
            << trace.knn_count() << " knn with k=" << *knn_k
            << ") on universe d=" << u.dim() << " side=" << u.side() << "\n";
  return 0;
}

std::string iso_utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buffer[40];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%S+00:00", &tm_utc);
  return buffer;
}

std::string fmt_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw Error("cannot open output file: " + path);
  file.write(content.data(), static_cast<std::streamsize>(content.size()));
  file.flush();
  if (!file) throw Error("I/O error writing output file: " + path);
}

/// Shared by serve-bench and serve-chaos: dump the process-global metrics
/// snapshot (`--metrics-out`, JSON unless the path ends in .prom) and the
/// span ring (`--trace-out`, Chrome trace-event JSON).
void write_observability_outputs(const cli::Args& args) {
  const std::string metrics_path = args.get_string("metrics-out", "");
  if (!metrics_path.empty()) {
    const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
    const bool prom =
        metrics_path.size() >= 5 &&
        metrics_path.compare(metrics_path.size() - 5, 5, ".prom") == 0;
    write_text_file(metrics_path, prom ? metrics_prometheus(snapshot)
                                       : metrics_json(snapshot));
    std::cout << "wrote " << metrics_path << "\n";
  }
  const std::string trace_path = args.get_string("trace-out", "");
  if (!trace_path.empty()) {
    const std::vector<TraceSpan> spans = TraceRing::global().snapshot();
    write_text_file(trace_path, chrome_trace_json(spans));
    std::cout << "wrote " << trace_path << " (" << spans.size() << " spans)\n";
  }
}

/// Google-benchmark-shaped JSON so tools/bench_trajectory.py aggregates
/// serve replays next to the micro benches.
void write_serve_json(const std::string& path,
                      const std::vector<ReplayReport>& reports) {
  std::string out;
  out += "{\n  \"context\": {\n";
  out += "    \"date\": \"" + iso_utc_now() + "\",\n";
  out += "    \"executable\": \"sfctool\",\n";
  out += "    \"num_cpus\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "    \"library_build_type\": \"release\"\n";
  out += "  },\n  \"benchmarks\": [\n";
  bool first = true;
  for (const ReplayReport& report : reports) {
    for (const auto& [metric, value] :
         {std::pair<const char*, double>{"p50", report.p50_us},
          std::pair<const char*, double>{"p99", report.p99_us}}) {
      if (!first) out += ",\n";
      first = false;
      out += "    {\n";
      out += "      \"name\": \"serve_replay_" + std::string(metric) +
             "/clients:" + std::to_string(report.clients) + "\",\n";
      out += "      \"run_type\": \"iteration\",\n";
      out += "      \"repetitions\": 1,\n";
      out += "      \"iterations\": " + std::to_string(report.queries) + ",\n";
      out += "      \"real_time\": " + fmt_double(value) + ",\n";
      out += "      \"cpu_time\": " + fmt_double(value) + ",\n";
      out += "      \"time_unit\": \"us\",\n";
      out += "      \"items_per_second\": " + fmt_double(report.qps) + ",\n";
      out += "      \"accepted\": " + std::to_string(report.accepted) + ",\n";
      out += "      \"rejected\": " + std::to_string(report.rejected) + ",\n";
      out += "      \"timed_out\": " + std::to_string(report.timed_out) + ",\n";
      out += "      \"retries\": " + std::to_string(report.retries) + ",\n";
      out += "      \"queue_wait_p99_us\": " +
             fmt_double(report.queue_wait_p99_us) + ",\n";
      out += "      \"execute_p99_us\": " + fmt_double(report.execute_p99_us) +
             "\n";
      out += "    }";
    }
  }
  out += "\n  ]\n}\n";
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw Error("cannot open json output file: " + path);
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  file.flush();
  if (!file) throw Error("I/O error writing json output file: " + path);
}

int cmd_serve_bench(const Command& cmd, const cli::Args& args) {
  const std::string trace_path = args.get_string("trace", "");
  if (trace_path.empty()) {
    return usage_command(cmd, "serve-bench requires --trace FILE");
  }
  const std::string clients_text = args.get_string("clients", "1,8,64");
  const auto shards = args.get_int("shards", 4);
  const auto max_batch = args.get_int("max-batch", 64);
  const auto window_us = args.get_int("window-us", 200);
  const auto max_p99_us = args.get_int("max-p99-us", 0);  // 0 = no gate
  const auto max_queue = args.get_int("max-queue", 0);    // 0 = unbounded
  const auto deadline_us = args.get_int("deadline-us", 0);  // 0 = none
  const auto retries = args.get_int("retries", 0);
  const auto backoff_us = args.get_int("backoff-us", 200);
  // Gate: accepted-query p99 at every client level must stay within this
  // factor of the first level's p99 (0 = off).  With an overloaded client
  // list (first entry uncontended, later entries past capacity) this checks
  // that admission control sheds load instead of letting latency collapse.
  const auto overload_factor = args.get_int("overload-p99-factor", 0);
  if (!shards || !max_batch || !window_us || !max_p99_us || !max_queue ||
      !deadline_us || !retries || !backoff_us || !overload_factor ||
      *shards < 0 || *max_batch < 1 || *window_us < 0 || *max_p99_us < 0 ||
      *max_queue < 0 || *deadline_us < 0 || *retries < 0 || *backoff_us < 1 ||
      *overload_factor < 0) {
    return usage_command(cmd, "bad numeric flag");
  }

  std::vector<std::uint32_t> client_counts;
  {
    std::size_t pos = 0;
    while (pos <= clients_text.size()) {
      const std::size_t comma = clients_text.find(',', pos);
      const std::size_t end =
          comma == std::string::npos ? clients_text.size() : comma;
      std::uint64_t value = 0;
      if (end == pos) return usage_command(cmd, "bad --clients list");
      for (std::size_t i = pos; i < end; ++i) {
        const char c = clients_text[i];
        if (c < '0' || c > '9') return usage_command(cmd, "bad --clients list");
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
      }
      if (value < 1 || value > 4096) {
        return usage_command(cmd, "--clients entries must be in [1, 4096]");
      }
      client_counts.push_back(static_cast<std::uint32_t>(value));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  IndexSource source;
  if (const int status =
          open_index_source(cmd, args, &source, /*round_trip_store=*/true);
      status != 0) {
    return status;
  }
  const QueryTrace trace = read_trace_file(trace_path);
  if (trace.empty()) return usage_command(cmd, "trace '" + trace_path + "' is empty");
  std::cout << "trace: " << trace.size() << " queries ("
            << trace.range_count() << " range, " << trace.knn_count()
            << " knn) from " << trace_path << "\n";

  std::vector<ReplayReport> reports;
  reports.reserve(client_counts.size());
  for (const std::uint32_t clients : client_counts) {
    ServerOptions server_options;
    server_options.shard_bits = static_cast<int>(*shards);
    server_options.max_batch = static_cast<std::uint32_t>(*max_batch);
    server_options.batch_window_us = static_cast<std::uint32_t>(*window_us);
    server_options.max_queue = static_cast<std::uint32_t>(*max_queue);
    server_options.deadline_us = static_cast<std::uint64_t>(*deadline_us);
    IndexServer server(source.view, server_options);
    ReplayOptions replay_options;
    replay_options.clients = clients;
    replay_options.max_retries = static_cast<std::uint32_t>(*retries);
    replay_options.backoff_base_us = static_cast<std::uint32_t>(*backoff_us);
    reports.push_back(replay_trace(server, trace, replay_options));
  }

  Table table({"clients", "qps", "p50_us", "p99_us", "max_us", "accepted",
               "rejected", "timeout", "retries"});
  for (const ReplayReport& report : reports) {
    table.add_row({Table::fmt_int(report.clients), fmt_double(report.qps),
                   fmt_double(report.p50_us), fmt_double(report.p99_us),
                   fmt_double(report.max_us), Table::fmt_int(report.accepted),
                   Table::fmt_int(report.rejected),
                   Table::fmt_int(report.timed_out),
                   Table::fmt_int(report.retries)});
  }
  table.print(std::cout);
  std::cout << "shards 2^" << *shards << ", max batch " << *max_batch
            << ", batch window " << *window_us << " us, max queue "
            << *max_queue << ", deadline " << *deadline_us << " us, retries "
            << *retries << "\n";

  const std::string json_path = args.get_string("json", "");
  if (!json_path.empty()) {
    write_serve_json(json_path, reports);
    std::cout << "wrote " << json_path << "\n";
  }
  write_observability_outputs(args);
  if (*max_p99_us > 0) {
    for (const ReplayReport& report : reports) {
      if (report.p99_us > static_cast<double>(*max_p99_us)) {
        std::cerr << "error: p99 " << fmt_double(report.p99_us) << " us at "
                  << report.clients << " clients exceeds the --max-p99-us "
                  << *max_p99_us << " gate\n";
        return 1;
      }
    }
    std::cout << "p99 gate: all client levels under " << *max_p99_us
              << " us\n";
  }
  if (*overload_factor > 0 && reports.size() > 1) {
    const double baseline = std::max(1.0, reports.front().p99_us);
    const double limit = baseline * static_cast<double>(*overload_factor);
    for (std::size_t i = 1; i < reports.size(); ++i) {
      if (reports[i].p99_us > limit) {
        std::cerr << "error: accepted-query p99 " << fmt_double(reports[i].p99_us)
                  << " us at " << reports[i].clients << " clients exceeds "
                  << *overload_factor << "x the " << reports.front().clients
                  << "-client baseline p99 (" << fmt_double(baseline)
                  << " us) — admission control failed to shed load\n";
        return 1;
      }
    }
    std::cout << "overload gate: accepted p99 within " << *overload_factor
              << "x of the " << reports.front().clients
              << "-client baseline at every level\n";
  }
  return 0;
}

/// Google-benchmark-shaped JSON for the chaos soak, alongside the serve
/// replay metrics in trajectory aggregation.
void write_chaos_json(const std::string& path, const ChaosReport& report,
                      std::uint32_t clients) {
  std::string out;
  out += "{\n  \"context\": {\n";
  out += "    \"date\": \"" + iso_utc_now() + "\",\n";
  out += "    \"executable\": \"sfctool\",\n";
  out += "    \"num_cpus\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "    \"library_build_type\": \"release\"\n";
  out += "  },\n  \"benchmarks\": [\n";
  bool first = true;
  for (const auto& [metric, value] :
       {std::pair<const char*, double>{"baseline_p99", report.baseline_p99_us},
        std::pair<const char*, double>{"soak_p99", report.soak_p99_us}}) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\n";
    out += "      \"name\": \"serve_chaos_" + std::string(metric) +
           "/clients:" + std::to_string(clients) + "\",\n";
    out += "      \"run_type\": \"iteration\",\n";
    out += "      \"repetitions\": 1,\n";
    out += "      \"iterations\": " + std::to_string(report.queries) + ",\n";
    out += "      \"real_time\": " + fmt_double(value) + ",\n";
    out += "      \"cpu_time\": " + fmt_double(value) + ",\n";
    out += "      \"time_unit\": \"us\",\n";
    out += "      \"accepted\": " + std::to_string(report.accepted) + ",\n";
    out += "      \"rejected\": " + std::to_string(report.rejected) + ",\n";
    out += "      \"timed_out\": " + std::to_string(report.timed_out) + ",\n";
    out += "      \"retries\": " + std::to_string(report.retries) + ",\n";
    out += "      \"wrong_answers\": " + std::to_string(report.wrong_answers) +
           ",\n";
    out += "      \"reloads\": " + std::to_string(report.reloads) + ",\n";
    out += "      \"failed_reloads\": " + std::to_string(report.failed_reloads) +
           ",\n";
    out += "      \"crash_cycles\": " + std::to_string(report.crash_cycles) +
           ",\n";
    out += "      \"crashed_writes\": " + std::to_string(report.crashed_writes) +
           ",\n";
    out += "      \"torn_files\": " + std::to_string(report.torn_files) + ",\n";
    out += "      \"epochs_observed\": " +
           std::to_string(report.epochs_observed) + "\n";
    out += "    }";
  }
  out += "\n  ]\n}\n";
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw Error("cannot open json output file: " + path);
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  file.flush();
  if (!file) throw Error("I/O error writing json output file: " + path);
}

int cmd_serve_chaos(const Command& cmd, const cli::Args& args) {
  const std::string file = args.get_string("file", "");
  if (file.empty()) {
    return usage_command(cmd,
                         "serve-chaos requires --file FILE (the served path)");
  }
  const std::string curve_name = args.get_string("curve", "hilbert");
  const auto dim = args.get_int("dim", 2);
  const auto bits = args.get_int("bits", 8);
  const auto seed = args.get_int("seed", 1);
  const auto points = args.get_int("points", 20000);
  const auto block_rows = args.get_int("block-rows", 256);
  const auto clients = args.get_int("clients", 8);
  const auto duration_s = args.get_int("duration-s", 5);
  const auto reload_ms = args.get_int("reload-every-ms", 100);
  const auto crash_every = args.get_int("crash-every", 0);
  const auto shards = args.get_int("shards", 4);
  const auto max_batch = args.get_int("max-batch", 64);
  const auto window_us = args.get_int("window-us", 200);
  const auto max_queue = args.get_int("max-queue", 0);
  const auto deadline_us = args.get_int("deadline-us", 0);
  const auto retries = args.get_int("retries", 3);
  const auto backoff_us = args.get_int("backoff-us", 200);
  const auto p99_factor = args.get_int("p99-factor", 2);
  if (!dim || !bits || !seed || !points || !block_rows || !clients ||
      !duration_s || !reload_ms || !crash_every || !shards || !max_batch ||
      !window_us || !max_queue || !deadline_us || !retries || !backoff_us ||
      !p99_factor || *points < 1 || *block_rows < 1 || *clients < 1 ||
      *duration_s < 1 || *reload_ms < 1 || *crash_every < 0 || *shards < 0 ||
      *max_batch < 1 || *window_us < 0 || *max_queue < 0 || *deadline_us < 0 ||
      *retries < 0 || *backoff_us < 1 || *p99_factor < 1) {
    return usage_command(cmd, "bad numeric flag");
  }
  std::string error;
  CurveDescriptor descriptor;
  const CurvePtr curve =
      build_curve(curve_name, static_cast<int>(*dim), static_cast<int>(*bits),
                  static_cast<std::uint64_t>(*seed), &error, &descriptor);
  if (!curve) return usage_command(cmd, error);

  ChaosOptions options;
  options.descriptor = descriptor;
  options.points = static_cast<std::uint64_t>(*points);
  options.seed = static_cast<std::uint64_t>(*seed);
  options.block_rows = static_cast<std::uint32_t>(*block_rows);
  options.path = file;
  options.clients = static_cast<std::uint32_t>(*clients);
  options.duration_s = static_cast<double>(*duration_s);
  options.reload_every_ms = static_cast<std::uint32_t>(*reload_ms);
  options.crash_every = static_cast<std::uint32_t>(*crash_every);
  options.max_retries = static_cast<std::uint32_t>(*retries);
  options.backoff_base_us = static_cast<std::uint32_t>(*backoff_us);
  options.server.shard_bits = static_cast<int>(*shards);
  options.server.max_batch = static_cast<std::uint32_t>(*max_batch);
  options.server.batch_window_us = static_cast<std::uint32_t>(*window_us);
  options.server.max_queue = static_cast<std::uint32_t>(*max_queue);
  options.server.deadline_us = static_cast<std::uint64_t>(*deadline_us);
  const std::string trace_path = args.get_string("trace", "");
  if (!trace_path.empty()) {
    options.trace = read_trace_file(trace_path);
    if (options.trace.empty()) {
      return usage_command(cmd, "trace '" + trace_path + "' is empty");
    }
  }

  std::cout << "chaos soak: " << options.points << " points per dataset, "
            << options.clients << " clients, " << *duration_s
            << " s, reload every " << *reload_ms << " ms"
            << (options.crash_every > 0
                    ? ", crash cycle every " +
                          std::to_string(options.crash_every) + " rewrites"
                    : "")
            << "\n";
  const ChaosReport report = run_chaos(options);

  Table table({"queries", "accepted", "rejected", "timeout", "retries",
               "wrong", "reloads", "failed", "crashes", "torn", "epochs"});
  table.add_row({Table::fmt_int(report.queries), Table::fmt_int(report.accepted),
                 Table::fmt_int(report.rejected),
                 Table::fmt_int(report.timed_out),
                 Table::fmt_int(report.retries),
                 Table::fmt_int(report.wrong_answers),
                 Table::fmt_int(report.reloads),
                 Table::fmt_int(report.failed_reloads),
                 Table::fmt_int(report.crashed_writes),
                 Table::fmt_int(report.torn_files),
                 Table::fmt_int(report.epochs_observed)});
  table.print(std::cout);
  std::cout << "accepted p99: baseline " << fmt_double(report.baseline_p99_us)
            << " us, under reloads " << fmt_double(report.soak_p99_us)
            << " us (gate factor " << *p99_factor << "x); wall "
            << fmt_double(report.wall_seconds) << " s\n";

  const std::string json_path = args.get_string("json", "");
  if (!json_path.empty()) {
    write_chaos_json(json_path, report, options.clients);
    std::cout << "wrote " << json_path << "\n";
  }
  write_observability_outputs(args);
  if (!report.clean(static_cast<double>(*p99_factor))) {
    // Full runtime snapshot on any gate failure, so the postmortem has the
    // server/store/engine counters next to the report numbers.
    std::cerr << "postmortem metrics snapshot:\n"
              << metrics_json(MetricsRegistry::global().snapshot()) << "\n";
    std::cerr << "error: chaos gate failed —"
              << (report.wrong_answers > 0
                      ? " " + std::to_string(report.wrong_answers) +
                            " wrong answers;"
                      : "")
              << (report.torn_files > 0
                      ? " " + std::to_string(report.torn_files) +
                            " torn files;"
                      : "")
              << (!report.identity_ok ? " admission identity broken;" : "")
              << (report.accepted == 0 ? " nothing accepted;" : "")
              << " p99 baseline " << fmt_double(report.baseline_p99_us)
              << " us vs soak " << fmt_double(report.soak_p99_us) << " us\n";
    return 1;
  }
  std::cout << "chaos gate clean: every accepted answer bit-identical to its "
               "generation, no torn files, identity holds\n";
  return 0;
}

int cmd_stats(const Command& cmd, const cli::Args& args) {
  const auto queries = args.get_int("queries", 2000);
  const auto clients = args.get_int("clients", 8);
  const auto extent = args.get_int("extent", 32);
  const std::string format = args.get_string("format", "json");
  if (!queries || !clients || !extent || *queries < 1 || *clients < 1 ||
      *clients > 4096 || *extent < 1) {
    return usage_command(cmd, "bad numeric flag");
  }
  if (format != "json" && format != "prom") {
    return usage_command(cmd, "--format must be json or prom");
  }
  // Fresh registry and span ring: the snapshot below covers exactly this
  // run's build, store round trip, and replay.
  MetricsRegistry::global().reset();
  TraceRing::global().clear();
  IndexSource source;
  if (const int status =
          open_index_source(cmd, args, &source, /*round_trip_store=*/true);
      status != 0) {
    return status;
  }
  const std::string trace_path = args.get_string("trace", "");
  QueryTrace trace;
  if (!trace_path.empty()) {
    trace = read_trace_file(trace_path);
    if (trace.empty()) {
      return usage_command(cmd, "trace '" + trace_path + "' is empty");
    }
  } else {
    TraceGenOptions gen;
    gen.count = static_cast<std::uint64_t>(*queries);
    gen.box_extent = static_cast<std::uint32_t>(*extent);
    trace = generate_trace(source.view.curve().universe(), gen);
  }
  IndexServer server(source.view, ServerOptions{});
  ReplayOptions replay_options;
  replay_options.clients = static_cast<std::uint32_t>(*clients);
  const ReplayReport report = replay_trace(server, trace, replay_options);
  std::cout << "replayed " << report.queries << " queries at " << *clients
            << " clients: p50 " << fmt_double(report.p50_us) << " us, p99 "
            << fmt_double(report.p99_us) << " us\n";
  const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
  const std::string rendered =
      format == "prom" ? metrics_prometheus(snapshot) : metrics_json(snapshot);
  const std::string out = args.get_string("out", "");
  if (out.empty()) {
    std::cout << rendered;
  } else {
    write_text_file(out, rendered);
    std::cout << "wrote " << out << "\n";
  }
  const std::string trace_out = args.get_string("trace-out", "");
  if (!trace_out.empty()) {
    const std::vector<TraceSpan> spans = TraceRing::global().snapshot();
    write_text_file(trace_out, chrome_trace_json(spans));
    std::cout << "wrote " << trace_out << " (" << spans.size() << " spans)\n";
  }
  return 0;
}

int cmd_store_fuzz(const Command& cmd, const cli::Args& args) {
  const std::string file = args.get_string("file", "");
  if (file.empty()) return usage_command(cmd, "store-fuzz requires --file FILE");
  const auto iterations = args.get_int("iterations", 2000);
  const auto seed = args.get_int("seed", 1);
  const auto threads = args.get_int("threads", 0);
  const auto probes = args.get_int("probes", 8);
  if (!iterations || !seed || !threads || !probes || *iterations < 1 ||
      *seed < 0 || *threads < 0 || *probes < 1) {
    return usage_command(cmd, "bad numeric flag");
  }

  FaultCampaignOptions options;
  options.iterations = static_cast<std::uint64_t>(*iterations);
  options.seed = static_cast<std::uint64_t>(*seed);
  options.threads = static_cast<std::uint32_t>(*threads);
  options.probes = static_cast<std::uint32_t>(*probes);
  options.scratch_dir = args.get_string("scratch", "");

  const FaultCampaignReport report = run_fault_campaign(file, options);
  Table table({"kind", "drawn"});
  for (std::size_t k = 0; k < report.by_kind.size(); ++k) {
    table.add_row({fault_kind_name(static_cast<FaultKind>(k)),
                   Table::fmt_int(report.by_kind[k])});
  }
  table.print(std::cout);
  std::cout << report.iterations << " seeded mutations of " << file
            << " (seed " << *seed << "): " << report.rejected
            << " rejected, " << report.benign << " benign, "
            << report.wrong_answer << " wrong-answer, " << report.wrong_error
            << " wrong-error\n";
  if (!report.clean()) {
    std::cerr << "error: corruption contract violated; failing iterations:";
    for (const std::uint64_t it : report.failing_iterations) {
      std::cerr << " " << it;
    }
    std::cerr << "\n";
    return 1;
  }
  std::cout << "fault campaign clean: every mutation rejected or provably "
               "benign\n";
  return 0;
}

int cmd_optimize(const Command& cmd, const cli::Args& args) {
  const auto dim = args.get_int("dim", 2);
  const auto side = args.get_int("side", 6);
  const auto iters = args.get_int("iters", 100000);
  const auto seed = args.get_int("seed", 1);
  if (!dim || !side || !iters || !seed) {
    return usage_command(cmd, "bad numeric flag");
  }
  const Universe u(static_cast<int>(*dim), static_cast<coord_t>(*side));
  OptimizeOptions options;
  options.iterations = static_cast<std::uint64_t>(*iters);
  options.seed = static_cast<std::uint64_t>(*seed);
  const OptimizeResult result = optimize_davg(u, {}, options);
  std::cout << "local search on d=" << u.dim() << " side=" << u.side()
            << " (n=" << u.cell_count() << "), " << result.iterations
            << " iterations:\n";
  std::cout << "  start Davg (row-major) = " << result.initial_davg << "\n";
  std::cout << "  best Davg found        = " << result.best_davg << "\n";
  std::cout << "  Theorem-1 lower bound  = " << bounds::davg_lower_bound(u)
            << "\n";
  std::cout << "  best/bound             = "
            << result.best_davg / bounds::davg_lower_bound(u) << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// The table
// ---------------------------------------------------------------------------

const FlagSpec kCurveFlag = {"curve", "NAME", "curve family (see 'sfctool help')"};
const FlagSpec kDimFlag = {"dim", "D", "universe dimensionality"};
const FlagSpec kBitsFlag = {"bits", "K", "universe side = 2^K (3^K for peano)"};
const FlagSpec kSeedFlag = {"seed", "S", "rng seed (random curve / dataset)"};
const std::vector<FlagSpec> kIndexBuildFlags = {
    kCurveFlag, kDimFlag, kBitsFlag, kSeedFlag,
    {"count", "N", "uniform random points to index (default 100000)"},
    {"points", "FILE", "index these points instead (one x1,..,xd per line)"},
    {"block-rows", "B", "directory block size in rows (default 256)"}};

std::vector<FlagSpec> with(std::vector<FlagSpec> base,
                           std::initializer_list<FlagSpec> extra) {
  base.insert(base.end(), extra.begin(), extra.end());
  return base;
}

const std::vector<Command>& command_table() {
  static const std::vector<Command> kCommands = {
      {"analyze", "stretch/clustering report for one curve",
       {kCurveFlag, kDimFlag, kBitsFlag, kSeedFlag,
        {"samples", "N", "all-pairs sample budget (default 200000)"}},
       cmd_analyze},
      {"render", "ASCII/SVG rendering of a 2-d curve",
       {kCurveFlag, kBitsFlag,
        {"binary", "", "render keys in binary (2^k side only)"},
        {"svg", "FILE", "also write an SVG rendering"}},
       cmd_render},
      {"sweep", "Davg convergence sweep over levels",
       {kCurveFlag, kDimFlag,
        {"max-bits", "K", "sweep levels 1..K"},
        {"csv", "", "emit CSV instead of an aligned table"}},
       cmd_sweep},
      {"bounds", "paper bounds for one universe", {kDimFlag, kBitsFlag},
       cmd_bounds},
      {"partition", "curve-order partition quality",
       {kCurveFlag, kDimFlag, kBitsFlag, {"parts", "P", "partition count"}},
       cmd_partition},
      {"clustering", "random-box clustering (mean curve runs per box)",
       {kCurveFlag, kDimFlag, kBitsFlag,
        {"extent", "E", "box side length"},
        {"samples", "N", "number of random boxes"}},
       cmd_clustering},
      {"cover", "exact key-interval cover of one box",
       {kCurveFlag, kDimFlag, kBitsFlag,
        {"lo", "X1,..,Xd", "inclusive low corner"},
        {"hi", "Y1,..,Yd", "inclusive high corner"},
        {"csv", "", "emit CSV instead of an aligned table"}},
       cmd_cover},
      {"index-build", "build an SFC point index and summarize it",
       kIndexBuildFlags, cmd_index_build},
      {"index-write", "build an index and persist it to a checksummed file",
       with(kIndexBuildFlags, {{"out", "FILE", "output index file (required)"}}),
       cmd_index_write},
      {"index-query", "range-query an index (built or --file mmapped)",
       with(kIndexBuildFlags,
            {{"file", "FILE", "mmap this index file instead of building"},
             {"lo", "X1,..,Xd", "inclusive low corner of the query box"},
             {"hi", "Y1,..,Yd", "inclusive high corner of the query box"},
             {"extent", "E", "random-box sampling: box side length"},
             {"samples", "N", "random-box sampling: number of boxes"}}),
       cmd_index_query},
      {"index-knn", "kNN-query an index (built or --file mmapped)",
       with(kIndexBuildFlags,
            {{"file", "FILE", "mmap this index file instead of building"},
             {"query", "X1,..,Xd", "query point"},
             {"k", "K", "neighbors to return (default 5)"}}),
       cmd_index_knn},
      {"trace-gen", "generate a reproducible mixed query trace",
       {kDimFlag, kBitsFlag, kSeedFlag,
        {"count", "N", "total queries (default 1000)"},
        {"extent", "E", "range-box side length (default 32)"},
        {"knn-k", "K", "k of the knn queries (default 8)"},
        {"knn-percent", "P", "percent of knn queries in the mix (default 50)"},
        {"out", "FILE", "output trace file (required)"}},
       cmd_trace_gen},
      {"serve-bench", "replay a query trace through the batching server",
       with(kIndexBuildFlags,
            {{"file", "FILE", "mmap this index file instead of building"},
             {"trace", "FILE", "query trace to replay (required)"},
             {"clients", "LIST", "client counts, e.g. 1,8,64 (default)"},
             {"shards", "B", "use 2^B curve-contiguous shards (default 4)"},
             {"max-batch", "N", "admission batch size (default 64)"},
             {"window-us", "U", "admission batch window, us (default 200)"},
             {"json", "FILE", "write google-benchmark-shaped JSON"},
             {"max-p99-us", "U", "fail if any p99 exceeds this (0 = off)"},
             {"max-queue", "N", "admission queue bound (0 = unbounded)"},
             {"deadline-us", "U", "per-query deadline, us (0 = none)"},
             {"retries", "N", "client retries on overload/timeout (default 0)"},
             {"backoff-us", "U", "base retry backoff, us (default 200)"},
             {"overload-p99-factor", "F",
              "fail if accepted p99 exceeds F x the first client level's p99 "
              "(0 = off)"},
             {"metrics-out", "FILE",
              "write a metrics snapshot (json; .prom = Prometheus text)"},
             {"trace-out", "FILE",
              "write captured spans as Chrome trace-event JSON"}}),
       cmd_serve_bench},
      {"serve-chaos", "soak the server under continuous reloads and crashes",
       {kCurveFlag, kDimFlag, kBitsFlag, kSeedFlag,
        {"file", "FILE", "served index path, rewritten throughout (required)"},
        {"points", "N", "points per dataset (default 20000)"},
        {"block-rows", "B", "directory block size in rows (default 256)"},
        {"trace", "FILE", "query trace to replay (default: generated)"},
        {"clients", "N", "concurrent clients (default 8)"},
        {"duration-s", "S", "soak seconds (default 5; baseline phase ~S/5)"},
        {"reload-every-ms", "MS", "writer rewrite+reload cadence (default 100)"},
        {"crash-every", "N", "crash cycle every Nth rewrite (0 = off)"},
        {"shards", "B", "use 2^B curve-contiguous shards (default 4)"},
        {"max-batch", "N", "admission batch size (default 64)"},
        {"window-us", "U", "admission batch window, us (default 200)"},
        {"max-queue", "N", "admission queue bound (0 = unbounded)"},
        {"deadline-us", "U", "per-query deadline, us (0 = none)"},
        {"retries", "N", "client retries on overload/timeout (default 3)"},
        {"backoff-us", "U", "base retry backoff, us (default 200)"},
        {"p99-factor", "F", "fail if soak p99 exceeds F x baseline (default 2)"},
        {"json", "FILE", "write google-benchmark-shaped JSON"},
        {"metrics-out", "FILE",
         "write a metrics snapshot (json; .prom = Prometheus text)"},
        {"trace-out", "FILE",
         "write captured spans as Chrome trace-event JSON"}},
       cmd_serve_chaos},
      {"stats", "replay a trace and dump the unified metrics snapshot",
       with(kIndexBuildFlags,
            {{"file", "FILE", "mmap this index file instead of building"},
             {"trace", "FILE", "query trace to replay (default: generated)"},
             {"queries", "N", "generated-trace query count (default 2000)"},
             {"extent", "E", "generated-trace box side length (default 32)"},
             {"clients", "N", "concurrent replay clients (default 8)"},
             {"format", "F", "json (default) or prom"},
             {"out", "FILE", "metrics output file (default: stdout)"},
             {"trace-out", "FILE",
              "write captured spans as Chrome trace-event JSON"}}),
       cmd_stats},
      {"store-fuzz", "seeded corruption campaign against an index file",
       {{"file", "FILE", "index file to fuzz (required)"},
        {"iterations", "N", "mutations to test (default 2000)"},
        kSeedFlag,
        {"threads", "T", "worker threads (default: hardware)"},
        {"probes", "N", "reference queries per kind (default 8)"},
        {"scratch", "DIR", "scratch directory (default: alongside --file)"}},
       cmd_store_fuzz},
      {"optimize", "local-search Davg optimization on a small universe",
       {kDimFlag,
        {"side", "S", "universe side"},
        {"iters", "N", "local-search iterations"},
        kSeedFlag},
       cmd_optimize},
  };
  return kCommands;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  // "sfctool help <command>" is sugar for "sfctool <command> --help".
  if (tokens.size() >= 2 && tokens[0] == "help") {
    tokens = {tokens[1], "--help"};
  }
  const cli::Args args = cli::Args::parse(tokens);
  if (!args.valid()) return usage_all(args.error());

  const std::string& name = args.subcommand();
  if (name.empty()) {
    return args.get_flag("help") ? usage_all("") : usage_all("missing command");
  }
  if (name == "help") return usage_all("");

  const Command* command = nullptr;
  for (const Command& candidate : command_table()) {
    if (name == candidate.name) {
      command = &candidate;
      break;
    }
  }
  if (command == nullptr) return usage_all("unknown command '" + name + "'");
  if (args.get_flag("help")) return usage_command(*command);

  // Strict flag validation against the command's spec — typos and
  // wrong-command flags fail up front instead of being silently ignored.
  for (const std::string& key : args.unused_keys()) {
    bool known = false;
    for (const FlagSpec& spec : command->flags) {
      if (key == spec.flag) {
        known = true;
        break;
      }
    }
    if (!known) {
      return usage_command(*command, "unknown flag --" + key + " for '" +
                                         std::string(command->name) + "'");
    }
  }

  try {
    return command->run(*command, args);
  } catch (const sfc::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
